module R = Rat
module P = Platform

type solution = {
  platform : P.t;
  master : P.node;
  ntask : R.t;
  alpha : R.t array;
  send_frac : R.t array;
  task_flow : Flow.t;
}

(* --- repair budgets ----------------------------------------------------

   The low-level matching/slot layers ([Schedule],
   [Bipartite_coloring]) take a plain integer cap.  At this level the
   caller may instead ask for an *adaptive* policy: the cap is resolved
   per call from the instance's standard-form row count (large LPs
   deserve more repair work before the certified cold fallback kicks
   in) and boosted exponentially while recent calls keep blowing the
   cap ([repairs_budget_exceeded] deltas), decaying back once repairs
   fit again.  Budgets bind only where the fallback is result-neutral —
   the matching/slot repairs of [schedule]; the cycle cancellation in
   the solve path is deliberately unbudgeted ({!Reconstruct.cancel}) —
   so budgets tune time, never answers. *)

type adaptive = {
  mutable level : int;  (* exponential boost, 0 .. [max_level] *)
  mutable calm : int;  (* consecutive within-cap resolutions at this level *)
  probe : Lp.Stats.t;
      (* observes the exceeded counter when the caller passes no stats *)
}

type budget = Fixed of int | Adaptive of adaptive

let adaptive_budget () =
  Adaptive { level = 0; calm = 0; probe = Lp.Stats.create () }

let max_level = 4
let calm_decay = 8

(* Standard-form row count of the LP [build_lp p ~master] produces,
   computed structurally (no model needed): one row per port/no-master/
   conservation constraint plus one per upper-bounded variable (every
   alpha and s variable carries ub 1). *)
let platform_rows p ~master =
  let nodes = P.nodes p in
  let count f = List.length (List.filter f nodes) in
  count (fun i -> P.out_edges p i <> [])
  + count (fun i -> P.in_edges p i <> [])
  + List.length (P.in_edges p master)
  + (P.num_nodes p - 1)
  + P.num_nodes p + P.num_edges p

(* Resolve a policy to the concrete cap for one reconstruction: returns
   the cap, the stats slot the reconstruction must report into (so the
   adaptive controller can observe the exceeded delta even when the
   caller passes no stats), and a completion callback feeding that
   delta back into the adaptive state. *)
let concretize ?stats ~rows budget =
  match budget with
  | None -> (None, stats, fun () -> ())
  | Some (Fixed b) -> (Some b, stats, fun () -> ())
  | Some (Adaptive a) ->
    let st = match stats with Some s -> s | None -> a.probe in
    let before = st.Lp.Stats.repairs_budget_exceeded in
    let base = max 8 (rows / 4) in
    let cap = base * (1 lsl min a.level max_level) in
    ( Some cap,
      Some st,
      fun () ->
        if st.Lp.Stats.repairs_budget_exceeded > before then begin
          a.calm <- 0;
          if a.level < max_level then a.level <- a.level + 1
        end
        else begin
          a.calm <- a.calm + 1;
          if a.calm >= calm_decay && a.level > 0 then begin
            a.level <- a.level - 1;
            a.calm <- 0
          end
        end )

let build_lp p ~master =
  let m = Lp.create () in
  let n = P.num_nodes p in
  let unit_iv = Some R.one in
  let alpha_v =
    Array.init n (fun i ->
        Lp.add_var ~ub:unit_iv m (Printf.sprintf "alpha_%s" (P.name p i)))
  in
  let s_v =
    Array.init (P.num_edges p) (fun e ->
        Lp.add_var ~ub:unit_iv m (Printf.sprintf "s_%s" (P.edge_name p e)))
  in
  (* one-port constraints *)
  List.iter
    (fun i ->
      let outs = P.out_edges p i and ins = P.in_edges p i in
      if outs <> [] then
        Lp.add_constraint
          ~name:(Printf.sprintf "outport_%s" (P.name p i))
          m
          (Lp.sum (List.map (fun e -> Lp.var s_v.(e)) outs))
          Lp.Le R.one;
      if ins <> [] then
        Lp.add_constraint
          ~name:(Printf.sprintf "inport_%s" (P.name p i))
          m
          (Lp.sum (List.map (fun e -> Lp.var s_v.(e)) ins))
          Lp.Le R.one)
    (P.nodes p);
  (* the master receives nothing *)
  List.iter
    (fun e ->
      Lp.add_constraint
        ~name:(Printf.sprintf "nomaster_%s" (P.edge_name p e))
        m (Lp.var s_v.(e)) Lp.Eq R.zero)
    (P.in_edges p master);
  (* conservation at every non-master node:
     sum_in s/c = alpha * speed + sum_out s/c *)
  List.iter
    (fun i ->
      if i <> master then begin
        let inflow =
          List.map
            (fun e -> Lp.term (R.inv (P.edge_cost p e)) s_v.(e))
            (P.in_edges p i)
        in
        let outflow =
          List.map
            (fun e -> Lp.term (R.neg (R.inv (P.edge_cost p e))) s_v.(e))
            (P.out_edges p i)
        in
        let consumed = Lp.term (R.neg (P.speed p i)) alpha_v.(i) in
        Lp.add_constraint
          ~name:(Printf.sprintf "conserve_%s" (P.name p i))
          m
          (Lp.sum ((consumed :: inflow) @ outflow))
          Lp.Eq R.zero
      end)
    (P.nodes p);
  Lp.set_objective m Lp.Maximize
    (Lp.sum
       (List.map (fun i -> Lp.term (P.speed p i) alpha_v.(i)) (P.nodes p)));
  (m, alpha_v, s_v)

let solve_lp_only ?rule ?solver ?factorization ?warm ?cache ?stats p ~master =
  let m, _, _ = build_lp p ~master in
  (m, Lp.solve ?rule ?solver ?factorization ?warm ?cache ?stats m)

(* Map an optimal LP solution back onto the platform: activity
   fractions per node, cycle-free task flow per edge. *)
let solution_of_sol ?recon ?stats p ~master alpha_v s_v (sol : Lp.solution) =
  let alpha = Array.map sol.Lp.values alpha_v in
  let raw_flow =
    Array.mapi (fun e sv -> R.div (sol.Lp.values sv) (P.edge_cost p e)) s_v
  in
  let task_flow = Reconstruct.cancel ?warm:recon ?stats p raw_flow in
  let send_frac =
    Array.mapi (fun e f -> R.mul f (P.edge_cost p e)) task_flow
  in
  {
    platform = p;
    master;
    ntask = sol.Lp.objective;
    alpha;
    send_frac;
    task_flow;
  }

let try_solve ?rule ?solver ?factorization ?warm ?cache ?recon ?budget ?stats
    p ~master =
  let m, alpha_v, s_v = build_lp p ~master in
  match Lp.solve ?rule ?solver ?factorization ?warm ?cache ?stats m with
  | Lp.Infeasible -> Error `Infeasible
  | Lp.Unbounded -> Error `Unbounded
  | Lp.Optimal sol ->
    (* The solve path deliberately has no budgeted repair stage: its one
       warm-repair layer, the cycle cancellation, is unbudgeted by
       design (see {!Reconstruct.cancel}) — a fallback there would
       change the warm answer on cyclic-support flows.  [budget] is
       still accepted so a single [Adaptive] value can be threaded
       through mixed solve/[schedule] workloads; a solve counts as a
       calm observation for the controller's decay. *)
    let _cap, rstats, observe =
      concretize ?stats ~rows:(platform_rows p ~master) budget
    in
    let solution =
      solution_of_sol ?recon ?stats:rstats p ~master alpha_v s_v sol
    in
    observe ();
    Ok solution

let solve ?rule ?solver ?factorization ?warm ?cache ?recon ?budget ?stats p
    ~master =
  match
    try_solve ?rule ?solver ?factorization ?warm ?cache ?recon ?budget ?stats
      p ~master
  with
  | Ok sol -> sol
  | Error (`Infeasible | `Unbounded) ->
    failwith "Master_slave.solve: LP not optimal (invalid platform?)"

(* --- structurally reduced solve ----------------------------------------

   The master–slave LP on a tree platform decomposes exactly
   (bandwidth-centric allocation): the maximal rate cap(i) at which the
   subtree rooted at i can absorb tasks is

     cap(i) = min( 1/c(parent->i),  speed(i) + K(i) )

   where K(i) — the rate i can usefully forward — is the tiny fractional
   knapsack  max sum_j y_j/c_j  s.t.  sum_j y_j <= 1,
   0 <= y_j <= c_j * cap(j)  over i's children.  Bottom-up those
   knapsacks determine ntask = speed(master) + K(master); a top-down
   sweep turns the saturated per-subtree plans into an actual flow by
   pure exact scaling (a node receiving f <= cap computes
   min(f, speed) itself and forwards the excess e <= K by scaling its
   knapsack plan by e/K — every constraint is linear, so the scaled
   plan stays feasible).  Two WLOG facts make the tree case complete:
   nodes unreachable from the master consume nothing in any feasible
   solution (sum conservation over the unreachable set: no task source),
   and upward flow is never needed (it only returns tasks toward the
   node that already holds them all; cancelling it frees port time).

   Non-tree platforms fall back to the full LP run through the
   {!Lp.Reduce} presolve, which strips bound rows, forced-zero columns
   and chain substitutions before the kernel sees the instance.

   Tree detection and the bottom-up sweep live in {!Tree_decomp},
   shared with the collective decompositions. *)

(* max sum y_e/c_e  s.t.  sum y_e <= 1,  0 <= y_e <= min(1, c_e*cap_e):
   how fast a node can push tasks through its child links.  Solved as an
   LP so the reduced path exercises (and is counted by) the same exact
   kernels as the full one. *)
let knapsack ?rule ?solver ?stats children =
  match children with
  | [] -> (R.zero, [])
  | _ ->
    let m = Lp.create () in
    let yv =
      List.map
        (fun (e, c, cap) ->
          let ub = R.min R.one (R.mul c cap) in
          (e, c, Lp.add_var ~ub:(Some ub) m (Printf.sprintf "y_%d" e)))
        children
    in
    Lp.add_constraint ~name:"outport" m
      (Lp.sum (List.map (fun (_, _, v) -> Lp.var v) yv))
      Lp.Le R.one;
    Lp.set_objective m Lp.Maximize
      (Lp.sum (List.map (fun (_, c, v) -> Lp.term (R.inv c) v) yv));
    (match Lp.solve ?rule ?solver ?stats m with
    | Lp.Optimal sol ->
      (sol.Lp.objective, List.map (fun (e, _, v) -> (e, sol.Lp.values v)) yv)
    | Lp.Infeasible | Lp.Unbounded ->
      (* cannot happen: y = 0 is feasible, the objective is bounded *)
      failwith "Master_slave.solve_reduced: knapsack LP not optimal")

let solve_reduced ?rule ?solver ?factorization ?recon ?stats p ~master =
  match Tree_decomp.detect p ~root:master with
  | None ->
    (* not a tree: presolve the full LP instead *)
    let m, alpha_v, s_v = build_lp p ~master in
    let red = Lp.Reduce.reduce m in
    (match Lp.Reduce.solve ?rule ?solver ?factorization ?stats red with
    | Lp.Infeasible | Lp.Unbounded ->
      failwith "Master_slave.solve_reduced: LP not optimal (invalid platform?)"
    | Lp.Optimal sol -> solution_of_sol ?recon ?stats p ~master alpha_v s_v sol)
  | Some td ->
    let order = td.Tree_decomp.order in
    (* bottom-up absorption: each node's value is (cap, K, plan) *)
    let absorbed =
      Tree_decomp.bottom_up p td ~default:(R.zero, R.zero, [])
        ~f:(fun i cs ->
          let children =
            List.map (fun (e, (c_cap, _, _)) -> (e, P.edge_cost p e, c_cap)) cs
          in
          let k, ys = knapsack ?rule ?solver ?stats children in
          let cap =
            if i = master then R.zero (* the root has no parent link *)
            else
              R.min
                (R.inv (P.edge_cost p td.Tree_decomp.parent_edge.(i)))
                (R.add (P.speed p i) k)
          in
          (cap, k, ys))
    in
    let kk = Array.map (fun (_, k, _) -> k) absorbed in
    let plan = Array.map (fun (_, _, ys) -> ys) absorbed in
    (* top-down: route the actual flow, scaling each saturated plan to
       the excess that really arrives *)
    let n = P.num_nodes p in
    let alpha = Array.make n R.zero in
    let send = Array.make (P.num_edges p) R.zero in
    let inflow = Array.make n R.zero in
    let consumed = ref R.zero in
    Array.iter
      (fun i ->
        let self, excess =
          if i = master then (P.speed p i, kk.(i))
          else
            let f = inflow.(i) in
            let self = R.min f (P.speed p i) in
            (self, R.sub f self)
        in
        if R.sign (P.speed p i) > 0 then
          alpha.(i) <- R.div self (P.speed p i);
        consumed := R.add !consumed self;
        if R.sign excess > 0 then begin
          let factor = R.div excess kk.(i) in
          List.iter
            (fun (e, y) ->
              let y' = R.mul factor y in
              if R.sign y' > 0 then begin
                send.(e) <- y';
                inflow.(P.edge_dst p e) <- R.div y' (P.edge_cost p e)
              end)
            plan.(i)
        end)
      order;
    let ntask = R.add (P.speed p master) kk.(master) in
    if not (R.equal !consumed ntask) then
      failwith "Master_slave.solve_reduced: consumption / ntask mismatch";
    let task_flow =
      Array.mapi
        (fun e y -> if R.is_zero y then R.zero else R.div y (P.edge_cost p e))
        send
    in
    { platform = p; master; ntask; alpha; send_frac = send; task_flow }

(* per-node task rate: alpha_i / w_i *)
let task_rate sol i = R.mul sol.alpha.(i) (P.speed sol.platform i)

let period_of sol =
  let rates =
    List.map (fun i -> task_rate sol i) (P.nodes sol.platform)
    @ Array.to_list sol.task_flow
  in
  R.of_bigint (R.lcm_denominators (List.filter (fun r -> not (R.is_zero r)) rates))

let schedule ?recon ?strict ?budget ?stats sol =
  let p = sol.platform in
  let budget, stats, observe =
    concretize ?stats ~rows:(platform_rows p ~master:sol.master) budget
  in
  let period = period_of sol in
  let delays = Reconstruct.delays ?warm:recon ?strict ?stats p sol.task_flow in
  let transfers =
    List.filter_map
      (fun e ->
        let items = R.mul period sol.task_flow.(e) in
        if R.sign items > 0 then
          Some
            {
              Schedule.d_edge = e;
              d_kind = 0;
              d_items = items;
              d_item_size = R.one;
              d_delay = delays.(P.edge_src p e);
            }
        else None)
      (P.edges p)
  in
  let compute =
    List.filter_map
      (fun i ->
        let tasks = R.mul period (task_rate sol i) in
        if R.sign tasks > 0 then Some (i, tasks) else None)
      (P.nodes p)
  in
  let sched =
    Reconstruct.reconstruct ?warm:recon ?strict ?budget ?stats p ~period
      ~transfers ~compute ~delays
  in
  observe ();
  sched

let tasks_per_period sched sol =
  ignore sol;
  R.sum (List.map snd sched.Schedule.compute)

type run = {
  elapsed : R.t;
  completed : R.t;
  upper_bound : R.t;
  expected : R.t;
}

let simulate ?(periods = 8) sol =
  let sched = schedule sol in
  let sim = Event_sim.create sol.platform in
  Schedule.execute ~sim ~periods sched;
  Event_sim.run sim;
  let completed =
    R.sum
      (List.map (fun i -> Event_sim.completed_work sim i) (P.nodes sol.platform))
  in
  let elapsed = R.mul (R.of_int periods) sched.Schedule.period in
  let expected =
    R.sum
      (List.map
         (fun (i, per_period) ->
           let active = periods - sched.Schedule.delays.(i) in
           if active > 0 then R.mul (R.of_int active) per_period else R.zero)
         sched.Schedule.compute)
  in
  { elapsed; completed; upper_bound = R.mul sol.ntask elapsed; expected }

let check_buffers sched ~master ~periods =
  let p = sched.Schedule.platform in
  let n = P.num_nodes p in
  let buffers = Array.make n R.zero in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  (* per-period volumes: receives count for the NEXT period's budget *)
  let result = ref (Ok ()) in
  for k = 0 to periods - 1 do
    if !result = Ok () then begin
      let received = Array.make n R.zero in
      let spent = Array.make n R.zero in
      List.iter
        (fun s ->
          List.iter
            (fun tr ->
              if tr.Schedule.delay <= k then begin
                let src = P.edge_src p tr.Schedule.edge in
                let dst = P.edge_dst p tr.Schedule.edge in
                spent.(src) <- R.add spent.(src) tr.Schedule.items;
                received.(dst) <- R.add received.(dst) tr.Schedule.items
              end)
            s.Schedule.transfers)
        sched.Schedule.slots;
      List.iter
        (fun (i, work) ->
          if sched.Schedule.delays.(i) <= k then
            spent.(i) <- R.add spent.(i) work)
        sched.Schedule.compute;
      for i = 0 to n - 1 do
        if i <> master && !result = Ok () then begin
          if R.compare spent.(i) buffers.(i) > 0 then
            result :=
              err "period %d: %s spends %s but only holds %s" k (P.name p i)
                (R.to_string spent.(i))
                (R.to_string buffers.(i))
          else buffers.(i) <- R.add (R.sub buffers.(i) spent.(i)) received.(i)
        end
      done
    end
  done;
  !result
