module R = Rat
module P = Platform

type solution = {
  platform : P.t;
  master : P.node;
  ntask : R.t;
  alpha : R.t array;
  send_frac : R.t array;
  task_flow : Flow.t;
}

let build_lp p ~master =
  let m = Lp.create () in
  let n = P.num_nodes p in
  let unit_iv = Some R.one in
  let alpha_v =
    Array.init n (fun i ->
        Lp.add_var ~ub:unit_iv m (Printf.sprintf "alpha_%s" (P.name p i)))
  in
  let s_v =
    Array.init (P.num_edges p) (fun e ->
        Lp.add_var ~ub:unit_iv m (Printf.sprintf "s_%s" (P.edge_name p e)))
  in
  (* one-port constraints *)
  List.iter
    (fun i ->
      let outs = P.out_edges p i and ins = P.in_edges p i in
      if outs <> [] then
        Lp.add_constraint
          ~name:(Printf.sprintf "outport_%s" (P.name p i))
          m
          (Lp.sum (List.map (fun e -> Lp.var s_v.(e)) outs))
          Lp.Le R.one;
      if ins <> [] then
        Lp.add_constraint
          ~name:(Printf.sprintf "inport_%s" (P.name p i))
          m
          (Lp.sum (List.map (fun e -> Lp.var s_v.(e)) ins))
          Lp.Le R.one)
    (P.nodes p);
  (* the master receives nothing *)
  List.iter
    (fun e ->
      Lp.add_constraint
        ~name:(Printf.sprintf "nomaster_%s" (P.edge_name p e))
        m (Lp.var s_v.(e)) Lp.Eq R.zero)
    (P.in_edges p master);
  (* conservation at every non-master node:
     sum_in s/c = alpha * speed + sum_out s/c *)
  List.iter
    (fun i ->
      if i <> master then begin
        let inflow =
          List.map
            (fun e -> Lp.term (R.inv (P.edge_cost p e)) s_v.(e))
            (P.in_edges p i)
        in
        let outflow =
          List.map
            (fun e -> Lp.term (R.neg (R.inv (P.edge_cost p e))) s_v.(e))
            (P.out_edges p i)
        in
        let consumed = Lp.term (R.neg (P.speed p i)) alpha_v.(i) in
        Lp.add_constraint
          ~name:(Printf.sprintf "conserve_%s" (P.name p i))
          m
          (Lp.sum ((consumed :: inflow) @ outflow))
          Lp.Eq R.zero
      end)
    (P.nodes p);
  Lp.set_objective m Lp.Maximize
    (Lp.sum
       (List.map (fun i -> Lp.term (P.speed p i) alpha_v.(i)) (P.nodes p)));
  (m, alpha_v, s_v)

let solve_lp_only ?rule ?solver ?factorization ?warm ?cache p ~master =
  let m, _, _ = build_lp p ~master in
  (m, Lp.solve ?rule ?solver ?factorization ?warm ?cache m)

let try_solve ?rule ?solver ?factorization ?warm ?cache p ~master =
  let m, alpha_v, s_v = build_lp p ~master in
  match Lp.solve ?rule ?solver ?factorization ?warm ?cache m with
  | Lp.Infeasible -> Error `Infeasible
  | Lp.Unbounded -> Error `Unbounded
  | Lp.Optimal sol ->
    let alpha = Array.map sol.Lp.values alpha_v in
    let raw_flow =
      Array.mapi
        (fun e sv -> R.div (sol.Lp.values sv) (P.edge_cost p e))
        s_v
    in
    let task_flow = Flow.cancel_cycles p raw_flow in
    let send_frac =
      Array.mapi (fun e f -> R.mul f (P.edge_cost p e)) task_flow
    in
    Ok
      {
        platform = p;
        master;
        ntask = sol.Lp.objective;
        alpha;
        send_frac;
        task_flow;
      }

let solve ?rule ?solver ?factorization ?warm ?cache p ~master =
  match try_solve ?rule ?solver ?factorization ?warm ?cache p ~master with
  | Ok sol -> sol
  | Error (`Infeasible | `Unbounded) ->
    failwith "Master_slave.solve: LP not optimal (invalid platform?)"

(* per-node task rate: alpha_i / w_i *)
let task_rate sol i = R.mul sol.alpha.(i) (P.speed sol.platform i)

let period_of sol =
  let rates =
    List.map (fun i -> task_rate sol i) (P.nodes sol.platform)
    @ Array.to_list sol.task_flow
  in
  R.of_bigint (R.lcm_denominators (List.filter (fun r -> not (R.is_zero r)) rates))

let schedule sol =
  let p = sol.platform in
  let period = period_of sol in
  let delays = Flow.delays p sol.task_flow in
  let transfers =
    List.filter_map
      (fun e ->
        let items = R.mul period sol.task_flow.(e) in
        if R.sign items > 0 then
          Some
            {
              Schedule.d_edge = e;
              d_kind = 0;
              d_items = items;
              d_item_size = R.one;
              d_delay = delays.(P.edge_src p e);
            }
        else None)
      (P.edges p)
  in
  let compute =
    List.filter_map
      (fun i ->
        let tasks = R.mul period (task_rate sol i) in
        if R.sign tasks > 0 then Some (i, tasks) else None)
      (P.nodes p)
  in
  Schedule.reconstruct p ~period ~transfers ~compute ~delays

let tasks_per_period sched sol =
  ignore sol;
  R.sum (List.map snd sched.Schedule.compute)

type run = {
  elapsed : R.t;
  completed : R.t;
  upper_bound : R.t;
  expected : R.t;
}

let simulate ?(periods = 8) sol =
  let sched = schedule sol in
  let sim = Event_sim.create sol.platform in
  Schedule.execute ~sim ~periods sched;
  Event_sim.run sim;
  let completed =
    R.sum
      (List.map (fun i -> Event_sim.completed_work sim i) (P.nodes sol.platform))
  in
  let elapsed = R.mul (R.of_int periods) sched.Schedule.period in
  let expected =
    R.sum
      (List.map
         (fun (i, per_period) ->
           let active = periods - sched.Schedule.delays.(i) in
           if active > 0 then R.mul (R.of_int active) per_period else R.zero)
         sched.Schedule.compute)
  in
  { elapsed; completed; upper_bound = R.mul sol.ntask elapsed; expected }

let check_buffers sched ~master ~periods =
  let p = sched.Schedule.platform in
  let n = P.num_nodes p in
  let buffers = Array.make n R.zero in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  (* per-period volumes: receives count for the NEXT period's budget *)
  let result = ref (Ok ()) in
  for k = 0 to periods - 1 do
    if !result = Ok () then begin
      let received = Array.make n R.zero in
      let spent = Array.make n R.zero in
      List.iter
        (fun s ->
          List.iter
            (fun tr ->
              if tr.Schedule.delay <= k then begin
                let src = P.edge_src p tr.Schedule.edge in
                let dst = P.edge_dst p tr.Schedule.edge in
                spent.(src) <- R.add spent.(src) tr.Schedule.items;
                received.(dst) <- R.add received.(dst) tr.Schedule.items
              end)
            s.Schedule.transfers)
        sched.Schedule.slots;
      List.iter
        (fun (i, work) ->
          if sched.Schedule.delays.(i) <= k then
            spent.(i) <- R.add spent.(i) work)
        sched.Schedule.compute;
      for i = 0 to n - 1 do
        if i <> master && !result = Ok () then begin
          if R.compare spent.(i) buffers.(i) > 0 then
            result :=
              err "period %d: %s spends %s but only holds %s" k (P.name p i)
                (R.to_string spent.(i))
                (R.to_string buffers.(i))
          else buffers.(i) <- R.add (R.sub buffers.(i) spent.(i)) received.(i)
        end
      done
    end
  done;
  !result
