module R = Rat
module P = Platform
module BC = Bipartite_coloring

type transfer = {
  edge : P.edge;
  kind : int;
  items : R.t;
  item_size : R.t;
  delay : int;
}

type slot = { offset : R.t; duration : R.t; transfers : transfer list }

type demand = {
  d_edge : P.edge;
  d_kind : int;
  d_items : R.t;
  d_item_size : R.t;
  d_delay : int;
}

type t = {
  platform : P.t;
  period : R.t;
  slots : slot list;
  compute : (P.node * R.t) list;
  delays : int array;
  demands : demand array;
}

let demand_equal a b =
  a.d_edge = b.d_edge && a.d_kind = b.d_kind && a.d_delay = b.d_delay
  && R.equal a.d_items b.d_items
  && R.equal a.d_item_size b.d_item_size

(* Same node/edge structure and the same exact weights: a schedule built
   on one is valid — indeed bit-identical — on the other. *)
let same_platform p p' =
  P.num_nodes p = P.num_nodes p'
  && P.num_edges p = P.num_edges p'
  && List.for_all
       (fun i -> Ext_rat.equal (P.weight p i) (P.weight p' i))
       (P.nodes p)
  && List.for_all
       (fun e ->
         P.edge_src p e = P.edge_src p' e
         && P.edge_dst p e = P.edge_dst p' e
         && R.equal (P.edge_cost p e) (P.edge_cost p' e))
       (P.edges p)

let array_for_all2 f a b =
  Array.length a = Array.length b
  &&
  try
    Array.iter2 (fun x y -> if not (f x y) then raise Exit) a b;
    true
  with Exit -> false

(* Previous schedule -> seed matchings for the warm colouring.  Tags are
   positional (demand array index), so a demand that disappeared would
   shift every later tag; re-key the previous slots through the demand
   identity [(d_edge, d_kind)] instead.  Ambiguous identities (the same
   edge+kind demanded twice — no current producer does that) disable
   seeding rather than risk a misleading seed. *)
let seed_of_prev p prev transfers =
  if P.num_nodes prev.platform <> P.num_nodes p then []
  else begin
    let num_edges = P.num_edges p in
    let tag_of = Hashtbl.create (Array.length transfers * 2) in
    let ambiguous = ref false in
    Array.iteri
      (fun tag d ->
        let key = (d.d_edge, d.d_kind) in
        if Hashtbl.mem tag_of key then ambiguous := true
        else Hashtbl.replace tag_of key tag)
      transfers;
    if !ambiguous then []
    else
      List.map
        (fun s ->
          {
            BC.duration = s.duration;
            edges =
              List.filter_map
                (fun tr ->
                  if tr.edge < 0 || tr.edge >= num_edges then None
                  else
                    match Hashtbl.find_opt tag_of (tr.edge, tr.kind) with
                    | None -> None
                    | Some tag ->
                      Some
                        {
                          BC.left = P.edge_src p tr.edge;
                          right = P.edge_dst p tr.edge;
                          weight = R.one;
                          tag;
                        })
                s.transfers;
          })
        prev.slots
  end

let reconstruct ?prev ?budget ?stats p ~period ~transfers ~compute ~delays =
  if R.sign period <= 0 then
    invalid_arg "Schedule.reconstruct: non-positive period";
  (* compute must fit the period *)
  List.iter
    (fun (i, work) ->
      if R.sign work < 0 then
        invalid_arg "Schedule.reconstruct: negative work";
      if R.sign work > 0 then begin
        match P.weight p i with
        | Ext_rat.Inf ->
          invalid_arg
            (Printf.sprintf "Schedule.reconstruct: %s cannot compute"
               (P.name p i))
        | Ext_rat.Fin w ->
          if R.compare (R.mul work w) period > 0 then
            invalid_arg
              (Printf.sprintf
                 "Schedule.reconstruct: compute on %s exceeds the period"
                 (P.name p i))
      end)
    compute;
  let transfers = Array.of_list transfers in
  Array.iter
    (fun d ->
      if R.sign d.d_items < 0 || R.sign d.d_item_size <= 0 then
        invalid_arg "Schedule.reconstruct: bad transfer volume")
    transfers;
  let note_recon ?(budget_exceeded = 0) ~repaired ~rebuilt ~slots_reused () =
    match stats with
    | None -> ()
    | Some s ->
      Lp.Stats.add_reconstruction s ~cycles_cancelled:0
        ~repairs_budget_exceeded:budget_exceeded
        ~matchings_repaired:repaired ~matchings_rebuilt:rebuilt
        ~slots_reused ()
  in
  let unchanged =
    match prev with
    | Some pr
      when R.equal pr.period period
           && pr.delays = delays
           && array_for_all2 demand_equal pr.demands transfers
           && List.length pr.compute = List.length compute
           && List.for_all2
                (fun (i, w) (i', w') -> i = i' && R.equal w w')
                pr.compute compute
           && same_platform pr.platform p -> Some pr
    | _ -> None
  in
  match unchanged with
  | Some pr ->
    (* nothing moved since the previous phase: the whole slot sequence
       carries over (bit-identically — it was derived from equal exact
       inputs) *)
    note_recon ~repaired:0 ~rebuilt:0 ~slots_reused:(List.length pr.slots) ();
    { platform = p; period; slots = pr.slots; compute; delays;
      demands = transfers }
  | None ->
    let bip_edges =
      Array.to_list
        (Array.mapi
           (fun tag d ->
             {
               BC.left = P.edge_src p d.d_edge;
               right = P.edge_dst p d.d_edge;
               weight =
                 R.mul d.d_items
                   (R.mul d.d_item_size (P.edge_cost p d.d_edge));
               tag;
             })
           transfers)
    in
    let bip_edges = List.filter (fun e -> R.sign e.BC.weight > 0) bip_edges in
    let n = P.num_nodes p in
    let delta = BC.max_weighted_degree ~left_size:n ~right_size:n bip_edges in
    if R.compare delta period > 0 then
      invalid_arg
        (Printf.sprintf
           "Schedule.reconstruct: port load %s exceeds period %s"
           (R.to_string delta) (R.to_string period));
    let seed =
      match prev with None -> [] | Some pr -> seed_of_prev p pr transfers
    in
    let eff = BC.effort () in
    let matchings =
      BC.decompose ~seed ?budget ~effort:eff ~left_size:n ~right_size:n
        bip_edges
    in
    let prev_slots =
      match prev with None -> [||] | Some pr -> Array.of_list pr.slots
    in
    (* A previous slot can be taken over verbatim when it pairs the same
       communications for the same duration and each transfer still
       fills the slot under the current edge costs (busy = duration,
       checked with a multiplication instead of re-deriving the item
       count with a division). *)
    let slot_reusable cand m =
      R.equal cand.duration m.BC.duration
      && List.length cand.transfers = List.length m.BC.edges
      && List.for_all
           (fun be ->
             let d = transfers.(be.BC.tag) in
             match
               List.find_opt
                 (fun tr -> tr.edge = d.d_edge && tr.kind = d.d_kind)
                 cand.transfers
             with
             | None -> false
             | Some tr ->
               R.equal tr.item_size d.d_item_size
               && tr.delay = d.d_delay
               && R.equal
                    (R.mul tr.items
                       (R.mul tr.item_size (P.edge_cost p d.d_edge)))
                    m.BC.duration)
           m.BC.edges
    in
    let reused_slots = ref 0 in
    let offset = ref R.zero in
    let slots =
      List.mapi
        (fun k m ->
          let slot_transfers =
            if k < Array.length prev_slots
               && slot_reusable prev_slots.(k) m
            then begin
              incr reused_slots;
              prev_slots.(k).transfers
            end
            else
              List.map
                (fun be ->
                  let d = transfers.(be.BC.tag) in
                  (* the slot keeps the communication busy for its whole
                     duration: items moved = duration / (c_e * item_size) *)
                  let items =
                    R.div m.BC.duration
                      (R.mul (P.edge_cost p d.d_edge) d.d_item_size)
                  in
                  {
                    edge = d.d_edge;
                    kind = d.d_kind;
                    items;
                    item_size = d.d_item_size;
                    delay = d.d_delay;
                  })
                m.BC.edges
          in
          let s =
            { offset = !offset; duration = m.BC.duration;
              transfers = slot_transfers }
          in
          offset := R.add !offset m.BC.duration;
          s)
        matchings
    in
    note_recon ~budget_exceeded:eff.BC.budget_exceeded
      ~repaired:(eff.BC.reused + eff.BC.repaired) ~rebuilt:eff.BC.rebuilt
      ~slots_reused:!reused_slots ();
    { platform = p; period; slots; compute; delays; demands = transfers }

let slot_count t = List.length t.slots

let items_on_edge t e ~kind =
  List.fold_left
    (fun acc s ->
      List.fold_left
        (fun acc tr ->
          if tr.edge = e && tr.kind = kind then R.add acc tr.items else acc)
        acc s.transfers)
    R.zero t.slots

let compute_work t i =
  List.fold_left
    (fun acc (j, w) -> if j = i then R.add acc w else acc)
    R.zero t.compute

let check_well_formed t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let p = t.platform in
  let rec check_slots prev_end = function
    | [] -> Ok ()
    | s :: rest ->
      if R.compare s.offset prev_end < 0 then err "overlapping slots"
      else if R.sign s.duration <= 0 then err "empty slot"
      else if R.compare (R.add s.offset s.duration) t.period > 0 then
        err "slot past the period end"
      else begin
        (* matching property + transfers fit the slot *)
        let senders = Hashtbl.create 8 and receivers = Hashtbl.create 8 in
        let rec check_transfers = function
          | [] -> check_slots (R.add s.offset s.duration) rest
          | tr :: more ->
            let src = P.edge_src p tr.edge and dst = P.edge_dst p tr.edge in
            if Hashtbl.mem senders src then err "slot reuses a send port"
            else if Hashtbl.mem receivers dst then err "slot reuses a recv port"
            else begin
              Hashtbl.replace senders src ();
              Hashtbl.replace receivers dst ();
              let busy =
                R.mul tr.items (R.mul tr.item_size (P.edge_cost p tr.edge))
              in
              if R.compare busy s.duration > 0 then
                err "transfer larger than its slot"
              else check_transfers more
            end
        in
        check_transfers s.transfers
      end
  in
  match check_slots R.zero t.slots with
  | Error _ as e -> e
  | Ok () ->
    let rec check_compute = function
      | [] -> Ok ()
      | (i, work) :: rest ->
        (match P.weight p i with
        | Ext_rat.Inf ->
          if R.sign work > 0 then err "compute on a routing node" else check_compute rest
        | Ext_rat.Fin w ->
          if R.compare (R.mul work w) t.period > 0 then
            err "compute exceeds the period on %s" (P.name p i)
          else check_compute rest)
    in
    check_compute t.compute

let execute ~sim ~periods ?(strict = true) t =
  for k = 0 to periods - 1 do
    let t0 = R.mul (R.of_int k) t.period in
    List.iter
      (fun s ->
        let start = R.add t0 s.offset in
        List.iter
          (fun tr ->
            if tr.delay <= k && R.sign tr.items > 0 then begin
              let size = R.mul tr.items tr.item_size in
              Event_sim.at sim start (fun sim ->
                  Event_sim.submit ~strict sim (Event_sim.Transfer (tr.edge, size)))
            end)
          s.transfers)
      t.slots;
    List.iter
      (fun (i, work) ->
        if t.delays.(i) <= k && R.sign work > 0 then
          Event_sim.at sim t0 (fun sim ->
              Event_sim.submit ~strict sim (Event_sim.Compute (i, work))))
      t.compute
  done

let pp ppf t =
  Format.fprintf ppf "period %a, %d slot(s)@." R.pp t.period
    (List.length t.slots);
  List.iter
    (fun s ->
      Format.fprintf ppf "  [%a, %a):" R.pp s.offset
        R.pp (R.add s.offset s.duration);
      List.iter
        (fun tr ->
          Format.fprintf ppf " %s kind=%d items=%a"
            (P.edge_name t.platform tr.edge) tr.kind R.pp tr.items)
        s.transfers;
      Format.fprintf ppf "@.")
    t.slots;
  List.iter
    (fun (i, w) ->
      Format.fprintf ppf "  compute %s: %a per period@."
        (P.name t.platform i) R.pp w)
    t.compute;
  Format.fprintf ppf "  delays:";
  Array.iteri
    (fun i d -> Format.fprintf ppf " %s:%d" (P.name t.platform i) d)
    t.delays;
  Format.fprintf ppf "@."

(* ASCII Gantt rendering: map [0, period) onto [0, width) columns and
   paint per-resource lanes.  Painting rounds towards "at least one
   column per non-empty activity" so hairline slots stay visible. *)
let render_timeline ?(width = 64) t =
  if width < 8 then invalid_arg "Schedule.render_timeline: width too small";
  let p = t.platform in
  let col_of time =
    (* floor (time / period * width), clamped *)
    let c =
      Bigint.to_int (R.floor (R.div (R.mul time (R.of_int width)) t.period))
    in
    if c < 0 then 0 else if c > width then width else c
  in
  let paint lane a b ch =
    let ca = col_of a and cb = Stdlib.max (col_of a + 1) (col_of b) in
    for c = ca to Stdlib.min (width - 1) (cb - 1) do
      Bytes.set lane c ch
    done
  in
  let lanes = ref [] in
  let lane_for key =
    match List.assoc_opt key !lanes with
    | Some l -> l
    | None ->
      let l = Bytes.make width '.' in
      lanes := !lanes @ [ (key, l) ];
      l
  in
  List.iter
    (fun s ->
      List.iter
        (fun tr ->
          let busy = R.mul tr.items (R.mul tr.item_size (P.edge_cost p tr.edge)) in
          if R.sign busy > 0 then begin
            let fin = R.add s.offset busy in
            let ch = Char.chr (Char.code '0' + (tr.kind mod 10)) in
            paint
              (lane_for (Printf.sprintf "%s send" (P.name p (P.edge_src p tr.edge))))
              s.offset fin ch;
            paint
              (lane_for (Printf.sprintf "%s recv" (P.name p (P.edge_dst p tr.edge))))
              s.offset fin ch
          end)
        s.transfers)
    t.slots;
  List.iter
    (fun (i, work) ->
      match P.weight p i with
      | Ext_rat.Fin w when R.sign work > 0 ->
        paint
          (lane_for (Printf.sprintf "%s cpu" (P.name p i)))
          R.zero (R.mul work w) '#'
      | Ext_rat.Fin _ | Ext_rat.Inf -> ())
    t.compute;
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "one period = %s time units; '.' idle, '#' compute, digits = transfer kinds\n"
       (R.to_string t.period));
  let label_width =
    List.fold_left (fun acc (k, _) -> Stdlib.max acc (String.length k)) 0 !lanes
  in
  List.iter
    (fun (key, lane) ->
      Buffer.add_string buf
        (Printf.sprintf "%-*s |%s|\n" label_width key (Bytes.to_string lane)))
    !lanes;
  Buffer.contents buf
