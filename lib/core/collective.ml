module R = Rat
module P = Platform

type mode = Sum | Max

type solution = {
  platform : P.t;
  source : P.node;
  targets : P.node list;
  mode : mode;
  throughput : R.t;
  flows : R.t array array;
  send_frac : R.t array;
}

let message_size = R.one

let validate_spec p ~source ~targets =
  if targets = [] then invalid_arg "Collective.solve: no targets";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun k ->
      if k < 0 || k >= P.num_nodes p then
        invalid_arg "Collective.solve: target out of range";
      if k = source then invalid_arg "Collective.solve: source is a target";
      if Hashtbl.mem seen k then invalid_arg "Collective.solve: duplicate target";
      Hashtbl.replace seen k ())
    targets

(* The LP shared by solve and the kernel-equality tests: returns the
   model plus the handles needed to read a solution back. *)
let build_model mode p ~source ~targets =
  validate_spec p ~source ~targets;
  let nk = List.length targets in
  let target = Array.of_list targets in
  let m = Lp.create () in
  let tp = Lp.add_var m "TP" in
  let unit_iv = Some R.one in
  let s_v =
    Array.init (P.num_edges p) (fun e ->
        Lp.add_var ~ub:unit_iv m (Printf.sprintf "s_%s" (P.edge_name p e)))
  in
  let f_v =
    Array.init nk (fun k ->
        Array.init (P.num_edges p) (fun e ->
            Lp.add_var m
              (Printf.sprintf "f%d_%s" k (P.edge_name p e))))
  in
  (* mode law linking s and f *)
  (match mode with
  | Sum ->
    Array.iteri
      (fun e sv ->
        let c = P.edge_cost p e in
        let total =
          Lp.sum (List.init nk (fun k -> Lp.term c f_v.(k).(e)))
        in
        Lp.add_constraint
          ~name:(Printf.sprintf "sumlaw_%s" (P.edge_name p e))
          m
          (Lp.sub (Lp.var sv) total)
          Lp.Eq R.zero)
      s_v
  | Max ->
    Array.iteri
      (fun e sv ->
        let c = P.edge_cost p e in
        for k = 0 to nk - 1 do
          Lp.add_constraint
            ~name:(Printf.sprintf "maxlaw%d_%s" k (P.edge_name p e))
            m
            (Lp.sub (Lp.var sv) (Lp.term c f_v.(k).(e)))
            Lp.Ge R.zero
        done)
      s_v);
  (* one-port *)
  List.iter
    (fun i ->
      let outs = P.out_edges p i and ins = P.in_edges p i in
      if outs <> [] then
        Lp.add_constraint
          ~name:(Printf.sprintf "outport_%s" (P.name p i))
          m
          (Lp.sum (List.map (fun e -> Lp.var s_v.(e)) outs))
          Lp.Le R.one;
      if ins <> [] then
        Lp.add_constraint
          ~name:(Printf.sprintf "inport_%s" (P.name p i))
          m
          (Lp.sum (List.map (fun e -> Lp.var s_v.(e)) ins))
          Lp.Le R.one)
    (P.nodes p);
  (* hygiene: nothing flows back into the source; targets do not
     re-emit their own messages (both are pure waste, forbidding them
     loses no throughput and keeps flows clean for reconstruction) *)
  for k = 0 to nk - 1 do
    List.iter
      (fun e ->
        Lp.add_constraint m (Lp.var f_v.(k).(e)) Lp.Eq R.zero)
      (P.in_edges p source);
    List.iter
      (fun e ->
        Lp.add_constraint m (Lp.var f_v.(k).(e)) Lp.Eq R.zero)
      (P.out_edges p target.(k))
  done;
  (* conservation per commodity at relay nodes; sink law at targets *)
  for k = 0 to nk - 1 do
    List.iter
      (fun i ->
        if i = source then ()
        else if i = target.(k) then begin
          let inflow =
            Lp.sum
              (List.map (fun e -> Lp.var f_v.(k).(e)) (P.in_edges p i))
          in
          Lp.add_constraint
            ~name:(Printf.sprintf "sink%d" k)
            m
            (Lp.sub inflow (Lp.var tp))
            Lp.Eq R.zero
        end
        else begin
          let inflow =
            List.map (fun e -> Lp.term R.one f_v.(k).(e)) (P.in_edges p i)
          in
          let outflow =
            List.map
              (fun e -> Lp.term R.minus_one f_v.(k).(e))
              (P.out_edges p i)
          in
          Lp.add_constraint
            ~name:(Printf.sprintf "conserve%d_%s" k (P.name p i))
            m
            (Lp.sum (inflow @ outflow))
            Lp.Eq R.zero
        end)
      (P.nodes p)
  done;
  Lp.set_objective m Lp.Maximize (Lp.var tp);
  (m, tp, s_v, f_v)

let model mode p ~source ~targets =
  let m, _, _, _ = build_model mode p ~source ~targets in
  m

let model_handles = build_model

(* busy fraction per edge under the mode law, from cleaned flows *)
let send_frac_of mode p nk flows =
  Array.init (P.num_edges p) (fun e ->
      let c = P.edge_cost p e in
      match mode with
      | Sum -> R.mul c (R.sum (List.init nk (fun k -> flows.(k).(e))))
      | Max ->
        R.mul c
          (List.fold_left
             (fun acc k -> R.max acc flows.(k).(e))
             R.zero
             (List.init nk Fun.id)))

let solution_of_lp mode p ~source ~targets f_v (sol : Lp.solution) =
  let nk = List.length targets in
  let flows =
    Array.init nk (fun k ->
        let raw = Array.map (fun v -> sol.Lp.values v) f_v.(k) in
        Flow.cancel_cycles p raw)
  in
  {
    platform = p;
    source;
    targets;
    mode;
    throughput = sol.Lp.objective;
    flows;
    send_frac = send_frac_of mode p nk flows;
  }

let solve ?rule ?solver ?factorization ?warm ?cache mode p ~source ~targets =
  let m, _tp, _s_v, f_v = build_model mode p ~source ~targets in
  match Lp.solve ?rule ?solver ?factorization ?warm ?cache m with
  | Lp.Infeasible | Lp.Unbounded ->
    failwith "Collective.solve: LP not optimal (cannot happen)"
  | Lp.Optimal sol -> solution_of_lp mode p ~source ~targets f_v sol

(* --- structurally reduced solve ----------------------------------------

   On a tree platform the collective LP has a closed form.  Commodity k
   must cross the tree edge into every subtree containing its target
   (a cut argument: the net k-flow across the edge is at least TP, and
   reverse flow is nonnegative, so the forward flow is too), and the
   tree path achieves exactly that.  With cnt(v) targets below tree
   edge e = (u, v), the edge multiplicity is

     m_e = cnt(v)            under Sum      (distinct messages)
     m_e = [cnt(v) > 0]      under Max      (copies share the wire)

   so every feasible solution has busy fraction s_e >= c_e * m_e * TP,
   and the in-port of v equals s_e while the out-port of u sums its
   child edges.  Hence

     TP <= min( per loaded edge   1 / (c_e * m_e),
                per node          1 / sum_children c_e * m_e )

   and routing TP along every source->target tree path meets the bound
   with equality — the LP optimum, reproduced without a pivot.  The
   test-suite certifies the claim by replaying the decomposed flows
   through Lp.check_solution on the monolithic model.

   Non-tree platforms fall back to the full LP run through the
   Lp.Reduce presolve; an unreachable target forces TP = 0 (its sink
   law is unsatisfiable at any positive rate), returned directly. *)

let zero_solution mode p ~source ~targets =
  let nk = List.length targets in
  let ne = P.num_edges p in
  {
    platform = p;
    source;
    targets;
    mode;
    throughput = R.zero;
    flows = Array.init nk (fun _ -> Array.make ne R.zero);
    send_frac = Array.make ne R.zero;
  }

let solve_reduced ?rule ?solver ?factorization ?stats mode p ~source ~targets
    =
  validate_spec p ~source ~targets;
  match Tree_decomp.detect p ~root:source with
  | None ->
    let m, _tp, _s_v, f_v = build_model mode p ~source ~targets in
    let red = Lp.Reduce.reduce m in
    (match Lp.Reduce.solve ?rule ?solver ?factorization ?stats red with
    | Lp.Infeasible | Lp.Unbounded ->
      failwith "Collective.solve_reduced: LP not optimal (cannot happen)"
    | Lp.Optimal sol -> solution_of_lp mode p ~source ~targets f_v sol)
  | Some td ->
    let target = Array.of_list targets in
    if Array.exists (fun t -> not td.Tree_decomp.reached.(t)) target then
      zero_solution mode p ~source ~targets
    else begin
      let nk = Array.length target in
      let is_target = Array.make (P.num_nodes p) false in
      Array.iter (fun t -> is_target.(t) <- true) target;
      let cnt =
        Tree_decomp.subtree_sums p td ~seed:(fun v ->
            if is_target.(v) then 1 else 0)
      in
      let mult v =
        match mode with
        | Sum -> R.of_int cnt.(v)
        | Max -> R.one (* only consulted where cnt > 0 *)
      in
      let tp = ref None in
      let consider x =
        match !tp with
        | Some y when R.compare y x <= 0 -> ()
        | _ -> tp := Some x
      in
      let kids = Tree_decomp.children p td in
      Array.iter
        (fun v ->
          (* loaded tree edge: busy fraction and the in-port of v *)
          let e = td.Tree_decomp.parent_edge.(v) in
          if e >= 0 && cnt.(v) > 0 then
            consider (R.inv (R.mul (P.edge_cost p e) (mult v)));
          (* out-port of v over its loaded child edges *)
          let load =
            List.fold_left
              (fun acc (e, w) ->
                if cnt.(w) > 0 then
                  R.add acc (R.mul (P.edge_cost p e) (mult w))
                else acc)
              R.zero kids.(v)
          in
          if R.sign load > 0 then consider (R.inv load))
        td.Tree_decomp.order;
      let tp =
        match !tp with
        | Some x -> x
        | None -> assert false (* >= 1 reached target loads its path *)
      in
      let ne = P.num_edges p in
      let flows = Array.init nk (fun _ -> Array.make ne R.zero) in
      for k = 0 to nk - 1 do
        let v = ref target.(k) in
        while !v <> source do
          let e = td.Tree_decomp.parent_edge.(!v) in
          flows.(k).(e) <- tp;
          v := P.edge_src p e
        done
      done;
      {
        platform = p;
        source;
        targets;
        mode;
        throughput = tp;
        flows;
        send_frac = send_frac_of mode p nk flows;
      }
    end

let per_edge_flow sol ~kind = sol.flows.(kind)

let check_invariants sol =
  let p = sol.platform in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let nk = List.length sol.targets in
  let target = Array.of_list sol.targets in
  let result = ref (Ok ()) in
  let set_err e = if !result = Ok () then result := e in
  (* conservation and sinks *)
  for k = 0 to nk - 1 do
    List.iter
      (fun i ->
        let b = Flow.balance p sol.flows.(k) i in
        if i = sol.source then begin
          if R.sign b > 0 then set_err (err "source absorbs commodity %d" k)
        end
        else if i = target.(k) then begin
          if not (R.equal b sol.throughput) then
            set_err
              (err "target %d receives %s, expected %s" k (R.to_string b)
                 (R.to_string sol.throughput))
        end
        else if not (R.is_zero b) then
          set_err (err "commodity %d unbalanced at %s" k (P.name p i)))
      (P.nodes p)
  done;
  (* mode law *)
  List.iter
    (fun e ->
      let c = P.edge_cost p e in
      let lhs = sol.send_frac.(e) in
      let ok =
        match sol.mode with
        | Sum ->
          R.equal lhs
            (R.mul c (R.sum (List.init nk (fun k -> sol.flows.(k).(e)))))
        | Max ->
          List.for_all
            (fun k -> R.Infix.(lhs >= R.mul c sol.flows.(k).(e)))
            (List.init nk Fun.id)
      in
      if not ok then set_err (err "mode law broken on %s" (P.edge_name p e)))
    (P.edges p);
  (* ports *)
  List.iter
    (fun i ->
      let load es =
        R.sum (List.map (fun e -> sol.send_frac.(e)) es)
      in
      if R.Infix.(load (P.out_edges p i) > R.one) then
        set_err (err "out-port overload at %s" (P.name p i));
      if R.Infix.(load (P.in_edges p i) > R.one) then
        set_err (err "in-port overload at %s" (P.name p i)))
    (P.nodes p);
  !result
