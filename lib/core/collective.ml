module R = Rat
module P = Platform

type mode = Sum | Max

type solution = {
  platform : P.t;
  source : P.node;
  targets : P.node list;
  mode : mode;
  throughput : R.t;
  flows : R.t array array;
  send_frac : R.t array;
}

let message_size = R.one

let validate_spec p ~source ~targets =
  if targets = [] then invalid_arg "Collective.solve: no targets";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun k ->
      if k < 0 || k >= P.num_nodes p then
        invalid_arg "Collective.solve: target out of range";
      if k = source then invalid_arg "Collective.solve: source is a target";
      if Hashtbl.mem seen k then invalid_arg "Collective.solve: duplicate target";
      Hashtbl.replace seen k ())
    targets

(* The LP shared by solve and the kernel-equality tests: returns the
   model plus the handles needed to read a solution back. *)
let build_model mode p ~source ~targets =
  validate_spec p ~source ~targets;
  let nk = List.length targets in
  let target = Array.of_list targets in
  let m = Lp.create () in
  let tp = Lp.add_var m "TP" in
  let unit_iv = Some R.one in
  let s_v =
    Array.init (P.num_edges p) (fun e ->
        Lp.add_var ~ub:unit_iv m (Printf.sprintf "s_%s" (P.edge_name p e)))
  in
  let f_v =
    Array.init nk (fun k ->
        Array.init (P.num_edges p) (fun e ->
            Lp.add_var m
              (Printf.sprintf "f%d_%s" k (P.edge_name p e))))
  in
  (* mode law linking s and f *)
  (match mode with
  | Sum ->
    Array.iteri
      (fun e sv ->
        let c = P.edge_cost p e in
        let total =
          Lp.sum (List.init nk (fun k -> Lp.term c f_v.(k).(e)))
        in
        Lp.add_constraint
          ~name:(Printf.sprintf "sumlaw_%s" (P.edge_name p e))
          m
          (Lp.sub (Lp.var sv) total)
          Lp.Eq R.zero)
      s_v
  | Max ->
    Array.iteri
      (fun e sv ->
        let c = P.edge_cost p e in
        for k = 0 to nk - 1 do
          Lp.add_constraint
            ~name:(Printf.sprintf "maxlaw%d_%s" k (P.edge_name p e))
            m
            (Lp.sub (Lp.var sv) (Lp.term c f_v.(k).(e)))
            Lp.Ge R.zero
        done)
      s_v);
  (* one-port *)
  List.iter
    (fun i ->
      let outs = P.out_edges p i and ins = P.in_edges p i in
      if outs <> [] then
        Lp.add_constraint
          ~name:(Printf.sprintf "outport_%s" (P.name p i))
          m
          (Lp.sum (List.map (fun e -> Lp.var s_v.(e)) outs))
          Lp.Le R.one;
      if ins <> [] then
        Lp.add_constraint
          ~name:(Printf.sprintf "inport_%s" (P.name p i))
          m
          (Lp.sum (List.map (fun e -> Lp.var s_v.(e)) ins))
          Lp.Le R.one)
    (P.nodes p);
  (* hygiene: nothing flows back into the source; targets do not
     re-emit their own messages (both are pure waste, forbidding them
     loses no throughput and keeps flows clean for reconstruction) *)
  for k = 0 to nk - 1 do
    List.iter
      (fun e ->
        Lp.add_constraint m (Lp.var f_v.(k).(e)) Lp.Eq R.zero)
      (P.in_edges p source);
    List.iter
      (fun e ->
        Lp.add_constraint m (Lp.var f_v.(k).(e)) Lp.Eq R.zero)
      (P.out_edges p target.(k))
  done;
  (* conservation per commodity at relay nodes; sink law at targets *)
  for k = 0 to nk - 1 do
    List.iter
      (fun i ->
        if i = source then ()
        else if i = target.(k) then begin
          let inflow =
            Lp.sum
              (List.map (fun e -> Lp.var f_v.(k).(e)) (P.in_edges p i))
          in
          Lp.add_constraint
            ~name:(Printf.sprintf "sink%d" k)
            m
            (Lp.sub inflow (Lp.var tp))
            Lp.Eq R.zero
        end
        else begin
          let inflow =
            List.map (fun e -> Lp.term R.one f_v.(k).(e)) (P.in_edges p i)
          in
          let outflow =
            List.map
              (fun e -> Lp.term R.minus_one f_v.(k).(e))
              (P.out_edges p i)
          in
          Lp.add_constraint
            ~name:(Printf.sprintf "conserve%d_%s" k (P.name p i))
            m
            (Lp.sum (inflow @ outflow))
            Lp.Eq R.zero
        end)
      (P.nodes p)
  done;
  Lp.set_objective m Lp.Maximize (Lp.var tp);
  (m, tp, f_v)

let model mode p ~source ~targets =
  let m, _, _ = build_model mode p ~source ~targets in
  m

let solve ?rule ?solver ?factorization ?warm ?cache mode p ~source ~targets =
  let nk = List.length targets in
  let m, _tp, f_v = build_model mode p ~source ~targets in
  match Lp.solve ?rule ?solver ?factorization ?warm ?cache m with
  | Lp.Infeasible | Lp.Unbounded ->
    failwith "Collective.solve: LP not optimal (cannot happen)"
  | Lp.Optimal sol ->
    let flows =
      Array.init nk (fun k ->
          let raw = Array.map (fun v -> sol.Lp.values v) f_v.(k) in
          Flow.cancel_cycles p raw)
    in
    (* recompute busy fractions from the cleaned flows *)
    let send_frac =
      Array.init (P.num_edges p) (fun e ->
          let c = P.edge_cost p e in
          match mode with
          | Sum ->
            R.mul c
              (R.sum (List.init nk (fun k -> flows.(k).(e))))
          | Max ->
            R.mul c
              (List.fold_left
                 (fun acc k -> R.max acc flows.(k).(e))
                 R.zero
                 (List.init nk Fun.id)))
    in
    {
      platform = p;
      source;
      targets;
      mode;
      throughput = sol.Lp.objective;
      flows;
      send_frac;
    }

let per_edge_flow sol ~kind = sol.flows.(kind)

let check_invariants sol =
  let p = sol.platform in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let nk = List.length sol.targets in
  let target = Array.of_list sol.targets in
  let result = ref (Ok ()) in
  let set_err e = if !result = Ok () then result := e in
  (* conservation and sinks *)
  for k = 0 to nk - 1 do
    List.iter
      (fun i ->
        let b = Flow.balance p sol.flows.(k) i in
        if i = sol.source then begin
          if R.sign b > 0 then set_err (err "source absorbs commodity %d" k)
        end
        else if i = target.(k) then begin
          if not (R.equal b sol.throughput) then
            set_err
              (err "target %d receives %s, expected %s" k (R.to_string b)
                 (R.to_string sol.throughput))
        end
        else if not (R.is_zero b) then
          set_err (err "commodity %d unbalanced at %s" k (P.name p i)))
      (P.nodes p)
  done;
  (* mode law *)
  List.iter
    (fun e ->
      let c = P.edge_cost p e in
      let lhs = sol.send_frac.(e) in
      let ok =
        match sol.mode with
        | Sum ->
          R.equal lhs
            (R.mul c (R.sum (List.init nk (fun k -> sol.flows.(k).(e)))))
        | Max ->
          List.for_all
            (fun k -> R.Infix.(lhs >= R.mul c sol.flows.(k).(e)))
            (List.init nk Fun.id)
      in
      if not ok then set_err (err "mode law broken on %s" (P.edge_name p e)))
    (P.edges p);
  (* ports *)
  List.iter
    (fun i ->
      let load es =
        R.sum (List.map (fun e -> sol.send_frac.(e)) es)
      in
      if R.Infix.(load (P.out_edges p i) > R.one) then
        set_err (err "out-port overload at %s" (P.name p i));
      if R.Infix.(load (P.in_edges p i) > R.one) then
        set_err (err "in-port overload at %s" (P.name p i)))
    (P.nodes p);
  !result
