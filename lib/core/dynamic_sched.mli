(** Dynamic steady-state scheduling (§5.5).

    Work is divided into phases.  At each phase boundary the scheduler
    observes resource performance, predicts the next phase, re-solves
    the steady-state LP on the predicted platform, and runs the new plan
    for one phase.  Three strategies are compared:

    - {!Static}: solve once for nominal speeds, never adapt;
    - {!Reactive}: probe at each boundary, forecast with an NWS-style
      adaptive predictor ({!Forecast}), re-solve;
    - {!Oracle}: re-solve with the {e true} next-phase performance —
      the reference the reactive strategy chases;
    - {!Robust}: like Reactive, but failure-aware — it detects dead
      CPUs and cut links (multiplier 0) through the simulator's outage
      events, re-solves the LP on the surviving subplatform at each
      boundary, cancels in-flight transfers stuck on dead links and
      retries them with exponential backoff (attempt [a] waits
      [phase/4 * 2^(a-1)], at most 3 retries, and a retry whose backoff
      lands past the horizon is abandoned — a per-transfer deadline),
      and degrades to a structured {!loss_report} instead of raising
      when no feasible plan survives.  Its per-phase transfer counts
      are floored by the static plan's counts on surviving routes, so
      [Robust >= Static] holds structurally (re-planning only adds
      supply and prunes dead routes) rather than resting on forecast
      quality.

      Under churn its warm state follows the platform: the surviving
      restriction is memoised on the multiplier snapshot (identical
      consecutive epochs reuse the previous sub-platform outright), and
      when the shape changes the reconstruction slot is rewritten
      through {!Platform.transfer_maps} / {!Reconstruct.Warm.remap}
      while the LP basis remaps by column meaning inside {!Lp.solve} —
      epoch [k]'s certificate seeds epoch [k+1] even across failures
      and recoveries.

    Plans are executed in queued (non-strict) mode: if reality is slower
    than the plan assumed, operations stack up and throughput drops —
    exactly the failure mode adaptation is meant to avoid. *)

type strategy = Static | Reactive | Oracle | Robust

type scenario = {
  platform : Platform.t;
  master : Platform.node;
  cpu_traces : (Platform.node * Event_sim.trace) list;
      (** Multipliers must stay strictly positive for the strategies
          that plan by {e dividing} by them ({!Reactive}, {!Oracle});
          zero multipliers (outages) are accepted for {!Static} — which
          never consults them and simply suffers the faults — and for
          {!Robust}, which routes them through failure detection and
          re-plans on the surviving subplatform. *)
  bw_traces : (Platform.edge * Event_sim.trace) list;
  phase : Rat.t; (** phase length; align trace breakpoints with it for
                     the oracle to be a true per-phase optimum *)
  phases : int;
}

val validate_scenario : ?allow_outages:bool -> scenario -> unit
(** @raise Invalid_argument on non-positive phase/phases, a negative
    multiplier, or — unless [~allow_outages:true] (the failure-aware
    paths) — a zero multiplier in a trace. *)

val multiplier_at : Event_sim.trace -> Rat.t -> Rat.t
(** Multiplier of a trace at a time: the entry with the largest
    breakpoint [<= t] wins (implicit 1 before the first breakpoint),
    regardless of the order the entries are listed in; among equal
    breakpoints the last entry wins.  This is the interpretation used
    for planning and for the traces handed to the simulator — traces
    need not be pre-sorted.  Internally {!run} compiles every trace
    into a sorted array once and binary-searches it per query. *)

val normalize_trace : Event_sim.trace -> Event_sim.trace
(** Sorted, breakpoint-deduplicated form of a trace (last entry wins
    among equal breakpoints) — the form handed to the simulator.  For
    any trace [tr] and time [t],
    [Event_sim.trace_multiplier (normalize_trace tr) t
     = multiplier_at tr t]. *)

type loss_report = {
  timed_out_transfers : int;
      (** in-flight transfers cancelled by the per-op timeout *)
  cancelled_transfers : int;
      (** transfers cancelled at a boundary because their link died *)
  retries : int;  (** task-file re-submissions performed *)
  lost_tasks : int;
      (** task files abandoned: retry budget exhausted, backoff past
          the horizon, or still in the backlog with no surviving route
          at the horizon.  Every cancellation is accounted exactly
          once: [timed_out_transfers + cancelled_transfers
          = retries + lost_tasks]. *)
  degraded_phases : int;
      (** phases with no feasible plan (no reachable compute power) *)
  dead_nodes : int;
      (** nodes unreachable from the master or compute-dead at the end *)
  dead_edges : int;  (** edges at multiplier 0 at the end *)
}
(** Structured degradation accounting of a {!Robust} run; all-zero
    ({!no_losses}) for the other strategies. *)

val no_losses : loss_report

type outcome = {
  strategy : strategy;
  completed : Rat.t; (** tasks finished within the horizon *)
  per_phase : Rat.t list; (** tasks finished per phase *)
  losses : loss_report;
}

(** {1 Crash recovery}

    A {!Robust} run given a [Checkpoint.config] persists, every
    [every] epochs, an exact record of its progress — the per-epoch
    decision log in original platform indices, a snapshot of the
    executor state at the boundary (arrears, backlog, deficits, loss
    counters, failure flags, work marks — all rational-exact), and the
    serialized warm LP basis — through the same checksummed
    atomic-commit machinery as the LP disk cache ({!Solve_store}).
    {!resume} continues such a run after a crash {e bit-identically}:
    the logged decisions are replayed through a fresh simulator (pure
    deterministic event replay, no LP work), the rebuilt state is
    validated against the stored snapshot, the warm basis is
    re-imported, and the remaining epochs run live against the same
    disk-tier LP memo the original run wrote through.  Corruption in
    any form — truncation, bit flips, version skew, a snapshot the
    replay cannot reproduce — is quarantined and degrades to a cold
    full run: recovery can cost time, never answers. *)

module Checkpoint : sig
  type config = {
    dir : string;
        (** {!Solve_store} directory holding the checkpoint record and
            the run's disk-tier LP cache *)
    every : int;  (** write cadence, in epochs (>= 1) *)
  }

  exception Halted of int
  (** Raised by {!run} at the [?halt_at] boundary (after any checkpoint
      due there is committed) — the chaos harness's crash injection:
      the simulator dies mid-run exactly as [kill -9] would, and the
      test then certifies {!resume} against an uninterrupted run. *)
end

val run :
  ?cache:Lp.Cache.t ->
  ?reuse:bool ->
  ?budget:Master_slave.budget ->
  ?stats:Lp.Stats.t ->
  ?checkpoint:Checkpoint.config ->
  ?halt_at:int ->
  scenario ->
  strategy ->
  outcome
(** Per-phase LP re-solves reuse the previous phase's optimal basis
    (warm start) and memoise exactly repeated instances — flat trace
    segments and the nominal platform cost one solve for the whole run.
    [?cache] shares the memo across runs (e.g. between strategies of the
    same scenario); [~reuse:false] disables both accelerators (including
    {!Robust}'s restriction memo and cross-epoch warm remap) and
    restores cold per-phase solves (baseline measurements).  [?budget]
    bounds the per-solve warm-repair work before the certified cold
    fallback ({!Master_slave.solve}'s [?budget]); [?stats] accumulates
    solver/repair/retry counters across all phases.  Completed work is
    unaffected by [reuse] up to the choice among optimal vertices;
    throughputs and bounds are bit-identical.

    [?checkpoint] (Robust only) enables crash recovery as described
    above; the run then manages its own LP cache with the store as its
    disk tier, so it is exclusive with [?cache].  [?halt_at] (requires
    [?checkpoint]) injects a crash: the run raises {!Checkpoint.Halted}
    at the start of that boundary's callback.
    @raise Invalid_argument on [?checkpoint] with a non-Robust
    strategy, a cadence [< 1], [?cache] alongside [?checkpoint], or
    [?halt_at] without [?checkpoint]. *)

val resume :
  ?reuse:bool ->
  ?budget:Master_slave.budget ->
  ?stats:Lp.Stats.t ->
  ?strict:bool ->
  checkpoint:Checkpoint.config ->
  scenario ->
  outcome * int option
(** Continue a crashed checkpointed {!Robust} run.  Returns the outcome
    and the epoch the run resumed from ([None]: no usable checkpoint
    was found and the run started cold — which is also the recovery
    path for a corrupt, version-skewed, wrong-platform or
    snapshot-mismatching record, after quarantining it).  The resumed
    outcome is bit-identical to the uninterrupted run's; with
    [~strict:true] that is certified on the spot against a fresh
    cold-state run (fresh caches, no checkpoint machinery).
    [?reuse]/[?budget]/[?stats] as in {!run}; [reuse] must match the
    original run's flag (a record written under the other flag is
    treated as a miss).
    @raise Failure if strict certification fails.
    @raise Invalid_argument on a cadence [< 1]. *)

val outcomes_equal : outcome -> outcome -> bool
(** Exact equality of two outcomes: strategy, completed work, per-phase
    marks (rational equality) and the loss report. *)

val oracle_throughput_bound :
  ?cache:Lp.Cache.t -> ?reuse:bool -> scenario -> Rat.t
(** Sum over phases of [phase * ntask(platform scaled by the true
    multipliers at the phase start)] — an upper bound on any
    phase-planned strategy when breakpoints are phase-aligned.
    [?cache]/[?reuse] as in {!run}; the bound itself is bit-identical
    either way. *)

(** {1 Failure-aware utilities} *)

val surviving_platform : scenario -> at:Rat.t -> Platform.restriction
(** The surviving subplatform at a time: nodes the master still reaches
    over links with a positive multiplier, scaled by the true
    multipliers at [at]; a reachable node whose CPU multiplier is zero
    survives as a pure relay (weight [+oo]).  The restriction carries
    the index maps back to the full platform.  This is exactly the
    platform {!Robust} re-plans on (with true multipliers in place of
    forecasts) and the one per-epoch LP bounds are computed on. *)

val fault_throughput_bound : ?cache:Lp.Cache.t -> ?reuse:bool -> scenario -> Rat.t
(** Outage-tolerant analogue of {!oracle_throughput_bound}: sum over
    phases of [phase * ntask(surviving platform at the phase start)],
    with fully degraded epochs (no reachable compute power)
    contributing zero.  Warm-started and memoised like the other
    bounds; never raises on outage scenarios. *)
