(** Dynamic steady-state scheduling (§5.5).

    Work is divided into phases.  At each phase boundary the scheduler
    observes resource performance, predicts the next phase, re-solves
    the steady-state LP on the predicted platform, and runs the new plan
    for one phase.  Three strategies are compared:

    - {!Static}: solve once for nominal speeds, never adapt;
    - {!Reactive}: probe at each boundary, forecast with an NWS-style
      adaptive predictor ({!Forecast}), re-solve;
    - {!Oracle}: re-solve with the {e true} next-phase performance —
      the reference the reactive strategy chases.

    Plans are executed in queued (non-strict) mode: if reality is slower
    than the plan assumed, operations stack up and throughput drops —
    exactly the failure mode adaptation is meant to avoid. *)

type strategy = Static | Reactive | Oracle

type scenario = {
  platform : Platform.t;
  master : Platform.node;
  cpu_traces : (Platform.node * Event_sim.trace) list;
      (** multipliers must stay strictly positive: dynamic re-planning
          assumes degraded-but-alive resources (outage handling is the
          simulator's business, not the planner's) *)
  bw_traces : (Platform.edge * Event_sim.trace) list;
  phase : Rat.t; (** phase length; align trace breakpoints with it for
                     the oracle to be a true per-phase optimum *)
  phases : int;
}

val validate_scenario : scenario -> unit
(** @raise Invalid_argument on non-positive phase/phases or a
    non-positive multiplier in a trace. *)

val multiplier_at : Event_sim.trace -> Rat.t -> Rat.t
(** Multiplier of a trace at a time: the entry with the largest
    breakpoint [<= t] wins (implicit 1 before the first breakpoint),
    regardless of the order the entries are listed in; among equal
    breakpoints the last entry wins.  This is the interpretation used
    for planning and for the traces handed to the simulator — traces
    need not be pre-sorted.  Internally {!run} compiles every trace
    into a sorted array once and binary-searches it per query. *)

type outcome = {
  strategy : strategy;
  completed : Rat.t; (** tasks finished within the horizon *)
  per_phase : Rat.t list; (** tasks finished per phase *)
}

val run : ?cache:Lp.Cache.t -> ?reuse:bool -> scenario -> strategy -> outcome
(** Per-phase LP re-solves reuse the previous phase's optimal basis
    (warm start) and memoise exactly repeated instances — flat trace
    segments and the nominal platform cost one solve for the whole run.
    [?cache] shares the memo across runs (e.g. between strategies of the
    same scenario); [~reuse:false] disables both accelerators and
    restores cold per-phase solves (baseline measurements).  Completed
    work is unaffected by [reuse] up to the choice among optimal
    vertices; throughputs and bounds are bit-identical. *)

val oracle_throughput_bound :
  ?cache:Lp.Cache.t -> ?reuse:bool -> scenario -> Rat.t
(** Sum over phases of [phase * ntask(platform scaled by the true
    multipliers at the phase start)] — an upper bound on any
    phase-planned strategy when breakpoints are phase-aligned.
    [?cache]/[?reuse] as in {!run}; the bound itself is bit-identical
    either way. *)
