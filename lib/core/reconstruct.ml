module R = Rat
module P = Platform
module BC = Bipartite_coloring

module Warm = struct
  type t = {
    mutable cancel : Flow.cancellation option;
    mutable sched : Schedule.t option;
    mutable delays : (R.t array * int array) option;
        (* the exact flow a delay vector was derived from, and that
           vector: reuse is keyed on bit-identity of the flow *)
    mutable hits : int;
    mutable misses : int;
  }

  let create () =
    { cancel = None; sched = None; delays = None; hits = 0; misses = 0 }

  let clear t =
    t.cancel <- None;
    t.sched <- None;
    t.delays <- None

  let hits t = t.hits
  let misses t = t.misses

  (* Cross-restriction transfer: rewrite the remembered cancellation,
     schedule and delay vector from the index space of the previous
     surviving sub-platform into a new one.  [node_map]/[edge_map]
     translate previous sub indices to new sub indices (-1 = the
     resource did not survive), exactly what {!Platform.transfer_maps}
     returns; [platform] is the new sub-platform the remapped state will
     be repaired against.  State that cannot be represented in the new
     space (log cycles through dropped edges, transfers on dropped
     edges) is dropped — the remapped slot is a *seed*, and every
     downstream consumer (delta cancellation, colouring seeds, slot
     reuse) validates what it takes, so remapping can never change an
     answer, only how much repair work the next phase pays. *)
  let remap t ~node_map ~edge_map ~platform =
    let np = P.num_nodes platform and ne = P.num_edges platform in
    let map_edge e =
      if e >= 0 && e < Array.length edge_map then edge_map.(e) else -1
    in
    let map_node i =
      if i >= 0 && i < Array.length node_map then node_map.(i) else -1
    in
    (match t.cancel with
    | None -> ()
    | Some c when Array.length c.Flow.cin <> Array.length edge_map ->
      t.cancel <- None
    | Some c ->
      let remap_flow f =
        let out = Array.make ne R.zero in
        Array.iteri
          (fun e v ->
            let e' = map_edge e in
            if e' >= 0 then out.(e') <- v)
          f;
        out
      in
      let log =
        List.filter_map
          (fun (cycle, amt) ->
            let mapped = List.map map_edge cycle in
            if List.for_all (fun e -> e >= 0) mapped then Some (mapped, amt)
            else None)
          c.Flow.log
      in
      t.cancel <-
        Some
          {
            Flow.cin = remap_flow c.Flow.cin;
            cout = remap_flow c.Flow.cout;
            log;
            fresh = 0;
          });
    (match t.sched with
    | None -> ()
    | Some s
      when P.num_nodes s.Schedule.platform <> Array.length node_map
           || P.num_edges s.Schedule.platform <> Array.length edge_map ->
      t.sched <- None
    | Some s ->
      let demands =
        Array.of_list
          (List.filter_map
             (fun d ->
               let e' = map_edge d.Schedule.d_edge in
               if e' >= 0 then Some { d with Schedule.d_edge = e' } else None)
             (Array.to_list s.Schedule.demands))
      in
      let slots =
        List.map
          (fun sl ->
            {
              sl with
              Schedule.transfers =
                List.filter_map
                  (fun tr ->
                    let e' = map_edge tr.Schedule.edge in
                    if e' >= 0 then Some { tr with Schedule.edge = e' }
                    else None)
                  sl.Schedule.transfers;
            })
          s.Schedule.slots
      in
      let compute =
        List.filter_map
          (fun (i, w) ->
            let i' = map_node i in
            if i' >= 0 then Some (i', w) else None)
          s.Schedule.compute
      in
      let delays = Array.make np 0 in
      Array.iteri
        (fun i d ->
          let i' = map_node i in
          if i' >= 0 then delays.(i') <- d)
        s.Schedule.delays;
      t.sched <-
        Some
          { s with Schedule.platform = platform; demands; slots; compute;
            delays });
    (match t.delays with
    | None -> ()
    | Some (f, d)
      when Array.length f = Array.length edge_map
           && Array.length d = Array.length node_map
           && Array.for_all (fun i -> i >= 0) node_map
           && Array.for_all (fun e -> e >= 0) edge_map ->
      (* a pure re-expansion (nothing dropped): the positive-flow DAG is
         preserved under renaming, recovered resources carry no flow, so
         the vector stays exact.  Any drop could change longest paths —
         clear instead. *)
      let nf = Array.make ne R.zero in
      Array.iteri (fun e v -> nf.(edge_map.(e)) <- v) f;
      let nd = Array.make np 0 in
      Array.iteri (fun i v -> nd.(node_map.(i)) <- v) d;
      t.delays <- Some (nf, nd)
    | Some _ -> t.delays <- None)

  (* Domain-local slot family, same shape as {!Lp.Warm.Family}: each
     {!Par.Pool} worker domain lazily gets (and keeps, across tasks) its
     own slot, so parallel sweeps repair their own phase sequence
     without locking.  The registry only exists for aggregate counters
     and [clear]. *)
  module Family = struct
    type slot = t

    type t = {
      key : slot Domain.DLS.key;
      mu : Mutex.t;
      registry : slot list ref;
    }

    let create () =
      let mu = Mutex.create () in
      let registry = ref [] in
      let key =
        Domain.DLS.new_key (fun () ->
            let s =
              { cancel = None; sched = None; delays = None; hits = 0;
                misses = 0 }
            in
            Mutex.lock mu;
            registry := s :: !registry;
            Mutex.unlock mu;
            s)
      in
      { key; mu; registry }

    let slot f = Domain.DLS.get f.key

    let slots f =
      Mutex.lock f.mu;
      let l = !(f.registry) in
      Mutex.unlock f.mu;
      l

    let domains f = List.length (slots f)
    let hits f = List.fold_left (fun a s -> a + s.hits) 0 (slots f)
    let misses f = List.fold_left (fun a s -> a + s.misses) 0 (slots f)

    let clear f =
      List.iter
        (fun s ->
          s.cancel <- None;
          s.sched <- None;
          s.delays <- None)
        (slots f)
  end
end

let note_cycles stats fresh =
  match stats with
  | None -> ()
  | Some s ->
    Lp.Stats.add_reconstruction s ~cycles_cancelled:fresh
      ~repairs_budget_exceeded:0 ~matchings_repaired:0 ~matchings_rebuilt:0
      ~slots_reused:0 ()

(* No repair budget here, by design: on a cyclic-support flow the delta
   replay and a cold search cancel different (equally valid)
   circulations, so a budget-triggered switch between them would change
   the warm run's answer — budgets steer effort, never results.  The
   replay prefix a fallback would skip is cheap anyway; the fresh search
   after it does the real work on heavily perturbed inputs. *)
let cancel ?warm ?stats p f =
  match warm with
  | None ->
    let c = Flow.cancel_cycles_log p f in
    note_cycles stats c.Flow.fresh;
    c.Flow.cout
  | Some w ->
    let c =
      match w.Warm.cancel with
      | Some prev when Array.length prev.Flow.cin = P.num_edges p ->
        w.Warm.hits <- w.Warm.hits + 1;
        Flow.cancel_cycles_delta p ~prev f
      | _ ->
        w.Warm.misses <- w.Warm.misses + 1;
        Flow.cancel_cycles_log p f
    in
    w.Warm.cancel <- Some c;
    note_cycles stats c.Flow.fresh;
    c.Flow.cout

(* Pipeline delays with warm reuse.  Phased runs replay the same
   steady-state flow period after period, so the longest-path pass of
   Flow.delays is pure overhead on every call but the first.  The slot
   keys the cached vector on the exact flow it was derived from and
   serves it only against bit-identical replays, so reuse can never
   change an answer; anything else recomputes cold and refreshes the
   slot. *)
let delays ?warm ?(strict = false) ?stats p f =
  let same_flow pf =
    Array.length pf = Array.length f
    &&
    try
      Array.iter2 (fun a b -> if not (R.equal a b) then raise Exit) pf f;
      true
    with Exit -> false
  in
  let d =
    match warm with
    | None -> Flow.delays p f
    | Some w ->
      (* reuses are counted into stats' delays_reused only: the slot's
         hit/miss counters keep meaning "schedule repairs", which
         callers assert exactly *)
      (match w.Warm.delays with
      | Some (pf, pd) when same_flow pf ->
        (match stats with
        | None -> ()
        | Some s ->
          Lp.Stats.add_reconstruction s ~delays_reused:1 ~cycles_cancelled:0
            ~matchings_repaired:0 ~matchings_rebuilt:0 ~slots_reused:0 ());
        pd
      | _ ->
        let d = Flow.delays p f in
        w.Warm.delays <- Some (Array.copy f, d);
        d)
  in
  if strict && d <> Flow.delays p f then
    failwith "Reconstruct: strict: warm delays differ from cold";
  d

(* Independent structural audit of a (possibly warm-repaired) schedule:
   the well-formedness check plus the colouring checker run on the
   matchings the slots encode, against the bipartite edges the stored
   demands induce.  This is exactly the certificate the paper's
   reconstruction owes: matching slots, per-edge volumes exact, total
   duration equal to the maximum weighted degree. *)
let certify (t : Schedule.t) =
  match Schedule.check_well_formed t with
  | Error _ as e -> e
  | Ok () ->
    let p = t.Schedule.platform in
    let tag_of = Hashtbl.create 32 in
    let ambiguous = ref false in
    Array.iteri
      (fun tag d ->
        let key = (d.Schedule.d_edge, d.Schedule.d_kind) in
        if Hashtbl.mem tag_of key then ambiguous := true
        else Hashtbl.replace tag_of key tag)
      t.Schedule.demands;
    if !ambiguous then
      (* two demands share an edge and kind: the slot transfers cannot
         be attributed back to demands, so only well-formedness (above)
         is checkable *)
      Ok ()
    else begin
      let bip_edges =
        List.filter_map
          (fun (key, tag) ->
            let d = t.Schedule.demands.(tag) in
            let w =
              R.mul d.Schedule.d_items
                (R.mul d.Schedule.d_item_size
                   (P.edge_cost p d.Schedule.d_edge))
            in
            if R.sign w > 0 then
              Some
                {
                  BC.left = P.edge_src p d.Schedule.d_edge;
                  right = P.edge_dst p d.Schedule.d_edge;
                  weight = w;
                  tag;
                }
            else begin
              ignore key;
              None
            end)
          (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tag_of [])
      in
      let missing = ref false in
      let matchings =
        List.map
          (fun s ->
            {
              BC.duration = s.Schedule.duration;
              edges =
                List.filter_map
                  (fun tr ->
                    match
                      Hashtbl.find_opt tag_of
                        (tr.Schedule.edge, tr.Schedule.kind)
                    with
                    | None ->
                      missing := true;
                      None
                    | Some tag ->
                      Some
                        {
                          BC.left = P.edge_src p tr.Schedule.edge;
                          right = P.edge_dst p tr.Schedule.edge;
                          weight = R.one;
                          tag;
                        })
                  s.Schedule.transfers;
            })
          t.Schedule.slots
      in
      if !missing then Error "certify: slot transfer without a demand"
      else
        let n = P.num_nodes p in
        BC.check_decomposition ~left_size:n ~right_size:n bip_edges
          matchings
    end

let reconstruct ?warm ?(strict = false) ?budget ?stats p ~period ~transfers
    ~compute ~delays =
  let prev =
    match warm with
    | None -> None
    | Some w ->
      (match w.Warm.sched with
      | Some _ as s ->
        w.Warm.hits <- w.Warm.hits + 1;
        s
      | None ->
        w.Warm.misses <- w.Warm.misses + 1;
        None)
  in
  let sched =
    Schedule.reconstruct ?prev ?budget ?stats p ~period ~transfers ~compute
      ~delays
  in
  (match warm with Some w -> w.Warm.sched <- Some sched | None -> ());
  if strict then begin
    (match certify sched with
    | Ok () -> ()
    | Error msg -> failwith ("Reconstruct: strict certification failed: " ^ msg));
    match prev with
    | None -> ()
    | Some _ ->
      (* differential certification against the cold path: every
         per-edge, per-kind volume must agree bit-for-bit (the slot
         sequences may legitimately differ — both are valid colourings
         of the same exact loads) *)
      let cold =
        Schedule.reconstruct p ~period ~transfers ~compute ~delays
      in
      if not (R.equal cold.Schedule.period sched.Schedule.period) then
        failwith "Reconstruct: strict: warm period differs from cold";
      Array.iter
        (fun d ->
          let warm_items =
            Schedule.items_on_edge sched d.Schedule.d_edge
              ~kind:d.Schedule.d_kind
          in
          let cold_items =
            Schedule.items_on_edge cold d.Schedule.d_edge
              ~kind:d.Schedule.d_kind
          in
          if not (R.equal warm_items cold_items) then
            failwith
              (Printf.sprintf
                 "Reconstruct: strict: edge %s kind %d moves %s warm vs %s \
                  cold"
                 (P.edge_name p d.Schedule.d_edge)
                 d.Schedule.d_kind (R.to_string warm_items)
                 (R.to_string cold_items)))
        sched.Schedule.demands
  end;
  sched
