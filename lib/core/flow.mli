(** Utilities on per-edge rational flows over a platform.

    LP optima may contain directed flow cycles (they cost bandwidth but
    not objective, so degenerate vertices can carry them).  Schedule
    reconstruction wants cycle-free flows: with an acyclic flow, delaying
    each node by its longest-path depth from the sources makes the
    periodic schedule executable with non-negative buffers from the first
    active period (§4.2's "the initialization needs at most the depth of
    the platform graph" argument). *)

type t = Rat.t array
(** One entry per platform edge: flow value in items per time unit
    (non-negative). *)

val zero : Platform.t -> t

val cancel_cycles : Platform.t -> t -> t
(** Removes all directed cycles from the support of the flow by
    repeatedly cancelling the minimum flow along a cycle.  Node balances
    (inflow minus outflow, per node) are preserved exactly. *)

type cancellation = {
  cin : t; (** the raw flow that was cancelled (copy) *)
  cout : t; (** the acyclic result *)
  log : (Platform.edge list * Rat.t) list;
      (** the cycles removed, oldest first, with the amount cancelled
          along each — a replayable certificate of [cin - cout] *)
  fresh : int;
      (** cycles found by search in this call (log replays excluded) *)
}

val cancel_cycles_log : Platform.t -> t -> cancellation
(** As {!cancel_cycles}, additionally returning the cancellation log so a
    later {!cancel_cycles_delta} can start from it. *)

val cancel_cycles_delta : Platform.t -> prev:cancellation -> t -> cancellation
(** Delta-mode cycle cancellation: replays [prev.log] (each cycle capped
    by its logged amount and by the current flow — always balance- and
    positivity-preserving), then searches only for the cycles the edges
    changed since [prev.cin] introduced.  On an input equal to [prev.cin]
    this returns [prev]'s result bit-identically with no cycle search at
    all ([fresh = 0]); on any input it produces an acyclic flow with the
    same node balances as the input, like {!cancel_cycles}.
    @raise Invalid_argument if [prev] belongs to a platform with a
    different edge count. *)

val is_acyclic : Platform.t -> t -> bool
(** No directed cycle among edges with positive flow? *)

val balance : Platform.t -> t -> Platform.node -> Rat.t
(** Inflow minus outflow at a node. *)

val delays : Platform.t -> t -> int array
(** Longest-path depth of each node in the DAG of positive-flow edges
    (nodes without positive inflow have delay 0).  Delaying node [i]'s
    periodic plan by [delays.(i)] periods guarantees non-negative buffers.
    @raise Invalid_argument if the flow support is cyclic. *)
