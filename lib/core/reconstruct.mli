(** Incremental schedule reconstruction (warm-starting the schedule
    layer, not just the LP).

    In phased runs — {!Dynamic_sched} strategies, {!Fixed_period.sweep},
    fault re-plans — consecutive phases solve near-identical instances,
    and the LP layer already warm-starts via {!Lp.Warm}.  This module
    extends the idea downstream of the solver: the previous phase's
    {e schedule} is repaired instead of rebuilt.  Concretely a warm slot
    remembers the last cycle-cancellation certificate
    ({!Flow.cancellation}) and the last {!Schedule.t}; the next phase
    replays the cancellation log on the perturbed flow
    ({!Flow.cancel_cycles_delta}) and seeds the weighted bipartite
    colouring with the previous matchings
    ({!Bipartite_coloring.decompose}'s [?seed]), reusing unchanged slots
    outright.

    Warm results obey exactly the same contract as cold ones — the
    per-edge volumes, period and checker verdicts are independent of the
    path taken — and on unchanged inputs they are bit-identical. *)

(** A warm slot carrying the previous phase's reconstruction state.
    Same discipline as {!Lp.Warm}: sequential code creates one slot per
    phase sequence; parallel sweeps use a {!Warm.Family}. *)
module Warm : sig
  type t

  val create : unit -> t

  val clear : t -> unit
  (** Drop the remembered cancellation, schedule and delay vector
      (counters are kept). *)

  val remap :
    t ->
    node_map:int array ->
    edge_map:int array ->
    platform:Platform.t ->
    unit
  (** Rewrite the slot's remembered state from the index space of the
      sub-platform it was produced on into a new sub-platform's —
      cross-epoch reuse under churn.  [node_map]/[edge_map] translate
      previous sub indices to new sub indices ([-1] = dropped), exactly
      the output of {!Platform.transfer_maps}; [platform] is the new
      sub-platform.  Unrepresentable state (cycles or transfers through
      dropped edges) is discarded, and the cached delay vector survives
      only a pure re-expansion (no drops).  The remapped state is a
      seed: every consumer re-validates it, so remapping affects repair
      effort, never results. *)

  val hits : t -> int
  (** Uses of the slot that found previous state to repair from. *)

  val misses : t -> int
  (** Uses that had to fall back to a cold rebuild (empty or
      incompatible slot). *)

  (** Domain-local family of warm slots for {!Par.Pool} sweeps: each
      worker domain gets its own slot on first use and keeps it across
      tasks, so parallel phase sequences repair their own predecessor
      without cross-domain locking.  Mirrors {!Lp.Warm.Family}. *)
  module Family : sig
    type slot = t
    type t

    val create : unit -> t

    val slot : t -> slot
    (** The calling domain's slot (created and registered on first
        use). *)

    val domains : t -> int
    (** Number of domains that have materialised a slot so far. *)

    val hits : t -> int
    val misses : t -> int
    (** Aggregates over all materialised slots. *)

    val clear : t -> unit
    (** {!clear} every materialised slot. *)
  end
end

val cancel :
  ?warm:Warm.t -> ?stats:Lp.Stats.t -> Platform.t -> Flow.t -> Flow.t
(** [cancel p f] removes flow cycles like {!Flow.cancel_cycles}, but
    through the warm slot: with previous state present the cancellation
    log is replayed on [f] and only freshly introduced cycles are
    searched for ({!Flow.cancel_cycles_delta}); the new certificate is
    deposited back into the slot.  Freshly found cycles are counted into
    [stats]' [cycles_cancelled].  Results are bit-identical to the cold
    path on unchanged flows and acyclic (with balances preserved) on any
    input.

    Deliberately {e not} subject to a repair budget: on cyclic-support
    flows the delta replay and a cold search legitimately cancel
    different circulations (both valid, different edge values), so a
    budget-triggered switch between them would change the warm run's
    answer — and the replay prefix a fallback would skip is the cheap
    part anyway (the fresh search after it does the real work).  Repair
    budgets cap the matching/slot layers, where the cold rebuild is
    certified to reproduce the repaired result. *)

val delays :
  ?warm:Warm.t ->
  ?strict:bool ->
  ?stats:Lp.Stats.t ->
  Platform.t ->
  Flow.t ->
  int array
(** [delays p f] is {!Flow.delays}, but through the warm slot: the slot
    remembers the last (flow, delay vector) pair and serves the vector
    again whenever [f] is bit-identical to the remembered flow —
    phased runs replay the same steady-state flow every period, so the
    longest-path pass is skipped entirely on their hot path.  Reuses
    are counted into [stats]' [delays_reused]; the slot's hit/miss
    counters are left to the schedule-repair path.  [strict]
    recomputes the cold vector and asserts bit-identity ([Failure]
    otherwise). *)

val certify : Schedule.t -> (unit, string) result
(** Independent structural audit of a (possibly warm-repaired)
    schedule: {!Schedule.check_well_formed} plus
    {!Bipartite_coloring.check_decomposition} on the matchings the slots
    encode against the bipartite instance induced by the schedule's
    stored demands.  (If two demands share an edge and kind the
    decomposition half is skipped — transfers can't be attributed.) *)

val reconstruct :
  ?warm:Warm.t ->
  ?strict:bool ->
  ?budget:int ->
  ?stats:Lp.Stats.t ->
  Platform.t ->
  period:Rat.t ->
  transfers:Schedule.demand list ->
  compute:(Platform.node * Rat.t) list ->
  delays:int array ->
  Schedule.t
(** Warm wrapper over {!Schedule.reconstruct}: the previous schedule in
    [warm] (if any) is passed as [?prev], and the result is deposited
    back into the slot for the next phase.  [?budget] bounds the
    matching-repair work before the colouring falls back to a cold
    peeling ({!Schedule.reconstruct}'s [?budget]).

    [strict] (default [false]) turns on paranoid certification: the
    result must pass {!certify}, and — whenever a previous schedule was
    actually used — a cold reconstruction is recomputed and the warm
    result's period and every per-edge per-kind item volume are asserted
    bit-identical to it ([Failure] otherwise).  Slot {e sequences} may
    legitimately differ after repairs; the asserted quantities are the
    ones throughput depends on. *)
