module R = Rat
module P = Platform

type solution = Collective.solution

let solve ?rule ?warm ?cache p ~source ~targets =
  Collective.solve ?rule ?warm ?cache Collective.Sum p ~source ~targets

let period_of (sol : solution) =
  let rates =
    Array.to_list sol.Collective.flows
    |> List.concat_map Array.to_list
    |> List.filter (fun r -> not (R.is_zero r))
  in
  R.of_bigint (R.lcm_denominators rates)

(* per-(edge, kind) demands with per-kind pipeline delays *)
let demands (sol : solution) period =
  let p = sol.Collective.platform in
  let nk = List.length sol.Collective.targets in
  let out = ref [] in
  for k = nk - 1 downto 0 do
    let flow = sol.Collective.flows.(k) in
    let delays = Flow.delays p flow in
    List.iter
      (fun e ->
        let items = R.mul period flow.(e) in
        if R.sign items > 0 then
          out :=
            {
              Schedule.d_edge = e;
              d_kind = k;
              d_items = items;
              d_item_size = Collective.message_size;
              d_delay = delays.(P.edge_src p e);
            }
            :: !out)
      (P.edges p)
  done;
  !out

let schedule (sol : solution) =
  let p = sol.Collective.platform in
  let period = period_of sol in
  let transfers = demands sol period in
  Schedule.reconstruct p ~period ~transfers ~compute:[]
    ~delays:(Array.make (P.num_nodes p) 0)

type run = {
  elapsed : R.t;
  periods : int;
  delivered : R.t array;
  upper_bound : R.t;
}

let simulate ?(periods = 8) (sol : solution) =
  let p = sol.Collective.platform in
  let period = period_of sol in
  let dems = demands sol period in
  let sched =
    Schedule.reconstruct p ~period ~transfers:dems ~compute:[]
      ~delays:(Array.make (P.num_nodes p) 0)
  in
  let sim = Event_sim.create p in
  Schedule.execute ~sim ~periods sched;
  Event_sim.run sim;
  (* analytic per-edge totals must match the simulator exactly *)
  let expected_edge = Array.make (P.num_edges p) R.zero in
  List.iter
    (fun d ->
      let active = periods - d.Schedule.d_delay in
      if active > 0 then
        expected_edge.(d.Schedule.d_edge) <-
          R.add
            expected_edge.(d.Schedule.d_edge)
            (R.mul (R.of_int active)
               (R.mul d.Schedule.d_items d.Schedule.d_item_size)))
    dems;
  List.iter
    (fun e ->
      let got = Event_sim.transferred sim e in
      if not (R.equal got expected_edge.(e)) then
        failwith
          (Printf.sprintf
             "Scatter.simulate: edge %s carried %s, expected %s"
             (P.edge_name p e) (R.to_string got)
             (R.to_string expected_edge.(e))))
    (P.edges p);
  (* messages delivered per target: inflow transfers of its own kind *)
  let target = Array.of_list sol.Collective.targets in
  let delivered =
    Array.mapi
      (fun k tgt ->
        List.fold_left
          (fun acc d ->
            if d.Schedule.d_kind = k && P.edge_dst p d.Schedule.d_edge = tgt
            then begin
              let active = periods - d.Schedule.d_delay in
              if active > 0 then
                R.add acc (R.mul (R.of_int active) d.Schedule.d_items)
              else acc
            end
            else acc)
          R.zero dems)
      target
  in
  let elapsed = R.mul (R.of_int periods) period in
  {
    elapsed;
    periods;
    delivered;
    upper_bound = R.mul sol.Collective.throughput elapsed;
  }
