(* Shared tree machinery behind the structurally reduced solvers: BFS
   tree detection (factored out of Master_slave.solve_reduced) plus the
   bottom-up absorption sweep every tree decomposition runs — the
   master–slave knapsack chain, the collective subtree-target counts,
   the all-to-all participant splits.  Keeping the structure in one
   place means one proof obligation for "the reachable part really is a
   tree" instead of three. *)

module R = Rat
module P = Platform

type t = {
  root : P.node;
  order : P.node array; (* BFS order over the reachable set, root first *)
  parent_edge : int array; (* tree edge parent->node; -1 at root/unreached *)
  reached : bool array;
}

(* BFS from the root over out-edges.  [Some t] when the reachable part
   is a tree: exactly (#reached - 1) distinct undirected links, and no
   parallel directed edges (a parallel link pair would offer combined
   bandwidth a single-parent decomposition cannot see). *)
let detect p ~root =
  let n = P.num_nodes p in
  let parent_edge = Array.make n (-1) in
  let reached = Array.make n false in
  reached.(root) <- true;
  let order = ref [ root ] in
  let q = Queue.create () in
  Queue.add root q;
  while not (Queue.is_empty q) do
    let i = Queue.pop q in
    List.iter
      (fun e ->
        let j = P.edge_dst p e in
        if not reached.(j) then begin
          reached.(j) <- true;
          parent_edge.(j) <- e;
          order := j :: !order;
          Queue.add j q
        end)
      (P.out_edges p i)
  done;
  let order = Array.of_list (List.rev !order) in
  let nr = Array.length order in
  let links = Hashtbl.create (2 * n) in
  let directed = Hashtbl.create (2 * n) in
  let parallel = ref false in
  List.iter
    (fun e ->
      let s = P.edge_src p e and d = P.edge_dst p e in
      if reached.(s) then begin
        (* BFS closure: the dst of a reached src is reached *)
        if Hashtbl.mem directed (s, d) then parallel := true
        else Hashtbl.add directed (s, d) ();
        Hashtbl.replace links (min s d, max s d) ()
      end)
    (P.edges p);
  if (not !parallel) && Hashtbl.length links = nr - 1 then
    Some { root; order; parent_edge; reached }
  else None

let parent p t v =
  let e = t.parent_edge.(v) in
  if e < 0 then invalid_arg "Tree_decomp.parent: root or unreached node";
  P.edge_src p e

(* children of each reachable node, as (tree_edge, child) pairs in BFS
   discovery order *)
let children p t =
  let kids = Array.make (P.num_nodes p) [] in
  Array.iter
    (fun v ->
      let e = t.parent_edge.(v) in
      if e >= 0 then begin
        let u = P.edge_src p e in
        kids.(u) <- (e, v) :: kids.(u)
      end)
    t.order;
  Array.map List.rev kids

(* generic bottom-up absorption: children are folded before their
   parent (reverse BFS order), [f v child_results] sees one
   [(tree_edge, child_value)] per child.  Entries of unreached nodes
   keep [default]. *)
let bottom_up p t ~default ~f =
  let kids = children p t in
  let value = Array.make (P.num_nodes p) default in
  for idx = Array.length t.order - 1 downto 0 do
    let v = t.order.(idx) in
    value.(v) <-
      f v (List.map (fun (e, w) -> (e, value.(w))) kids.(v))
  done;
  value

(* subtree-integral of a per-node seed — the multiplicity engine of the
   collective decompositions ([seed] is a target/participant
   indicator) *)
let subtree_sums p t ~seed =
  bottom_up p t ~default:0 ~f:(fun v cs ->
      List.fold_left (fun acc (_, c) -> acc + c) (seed v) cs)

(* per node: the directed edge back to its parent, or -1 when the
   platform has no such edge (or at the root / unreached nodes) — the
   upward lanes the all-to-all decomposition routes through *)
let up_edges p t =
  let ids = Hashtbl.create (2 * P.num_nodes p) in
  List.iter
    (fun e -> Hashtbl.replace ids (P.edge_src p e, P.edge_dst p e) e)
    (P.edges p);
  Array.mapi
    (fun v e ->
      if e < 0 then -1
      else
        match Hashtbl.find_opt ids (v, P.edge_src p e) with
        | Some up -> up
        | None -> -1)
    t.parent_edge
