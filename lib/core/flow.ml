module R = Rat
module P = Platform

type t = R.t array

let zero p = Array.make (P.num_edges p) R.zero

let balance p f i =
  let inflow =
    List.fold_left (fun acc e -> R.add acc f.(e)) R.zero (P.in_edges p i)
  in
  let outflow =
    List.fold_left (fun acc e -> R.add acc f.(e)) R.zero (P.out_edges p i)
  in
  R.sub inflow outflow

(* Find a directed cycle among positive-flow edges, as an edge list, via
   iterative DFS with colours. *)
let find_cycle p f =
  let n = P.num_nodes p in
  let colour = Array.make n 0 (* 0 white, 1 grey, 2 black *) in
  let parent_edge = Array.make n (-1) in
  let cycle = ref None in
  let rec dfs i =
    colour.(i) <- 1;
    List.iter
      (fun e ->
        if !cycle = None && R.sign f.(e) > 0 then begin
          let j = P.edge_dst p e in
          if colour.(j) = 0 then begin
            parent_edge.(j) <- e;
            dfs j
          end
          else if colour.(j) = 1 then begin
            (* found: walk back from i to j along parent edges *)
            let rec collect acc v =
              if v = j then acc
              else begin
                let pe = parent_edge.(v) in
                collect (pe :: acc) (P.edge_src p pe)
              end
            in
            cycle := Some (collect [ e ] i)
          end
        end)
      (P.out_edges p i);
    if !cycle = None then colour.(i) <- 2
  in
  let i = ref 0 in
  while !cycle = None && !i < n do
    if colour.(!i) = 0 then dfs !i;
    incr i
  done;
  !cycle

type cancellation = {
  cin : t;
  cout : t;
  log : (Platform.edge list * R.t) list;
  fresh : int;
}

(* Cancel every cycle found by search, in place, appending to the log
   (newest last).  Returns the number of cycles cancelled. *)
let cancel_by_search p f log =
  let found = ref 0 in
  let rec go () =
    match find_cycle p f with
    | None -> ()
    | Some cyc ->
      let m =
        List.fold_left (fun acc e -> R.min acc f.(e)) f.(List.hd cyc) cyc
      in
      List.iter (fun e -> f.(e) <- R.sub f.(e) m) cyc;
      incr found;
      log := (cyc, m) :: !log;
      go ()
  in
  go ();
  !found

let cancel_cycles_log p f =
  let cin = Array.copy f in
  let cout = Array.copy f in
  let log = ref [] in
  let fresh = cancel_by_search p cout log in
  { cin; cout; log = List.rev !log; fresh }

let cancel_cycles p f = (cancel_cycles_log p f).cout

(* Delta mode: the previous cancellation's log is a certificate of the
   circulation that was removed last time.  Subtracting any amount
   [0 < x <= min flow along the cycle] along a full cycle preserves node
   balances and non-negativity, so replaying each logged cycle capped by
   both its logged amount and the current flow is sound whatever changed
   since.  On an unchanged input the replay reproduces the previous
   acyclic flow exactly (bit-identical, no search); on a perturbed input
   it removes the bulk of the circulation cheaply and a final search
   pass cancels only the cycles the changed edges introduced. *)
let cancel_cycles_delta p ~prev f =
  if Array.length prev.cin <> Array.length f then
    invalid_arg "Flow.cancel_cycles_delta: previous flow has a different size";
  let unchanged =
    try
      Array.iter2
        (fun a b -> if not (R.equal a b) then raise Exit)
        prev.cin f;
      true
    with Exit -> false
  in
  if unchanged then { prev with cin = Array.copy f; fresh = 0 }
  else begin
    let cout = Array.copy f in
    let log = ref [] in
    List.iter
      (fun (cyc, m) ->
        let x =
          List.fold_left (fun acc e -> R.min acc cout.(e)) m cyc
        in
        if R.sign x > 0 then begin
          List.iter (fun e -> cout.(e) <- R.sub cout.(e) x) cyc;
          log := (cyc, x) :: !log
        end)
      prev.log;
    let fresh = cancel_by_search p cout log in
    { cin = Array.copy f; cout; log = List.rev !log; fresh }
  end

let is_acyclic p f = find_cycle p f = None

let delays p f =
  if not (is_acyclic p f) then
    invalid_arg "Flow.delays: flow support is cyclic";
  let n = P.num_nodes p in
  let delay = Array.make n 0 in
  (* longest path: relax in topological order of the support DAG *)
  let indeg = Array.make n 0 in
  for e = 0 to P.num_edges p - 1 do
    if R.sign f.(e) > 0 then
      indeg.(P.edge_dst p e) <- indeg.(P.edge_dst p e) + 1
  done;
  let q = Queue.create () in
  for i = 0 to n - 1 do
    if indeg.(i) = 0 then Queue.add i q
  done;
  while not (Queue.is_empty q) do
    let i = Queue.pop q in
    List.iter
      (fun e ->
        if R.sign f.(e) > 0 then begin
          let j = P.edge_dst p e in
          if delay.(i) + 1 > delay.(j) then delay.(j) <- delay.(i) + 1;
          indeg.(j) <- indeg.(j) - 1;
          if indeg.(j) = 0 then Queue.add j q
        end)
      (P.out_edges p i);
    ()
  done;
  delay
