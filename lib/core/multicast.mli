(** Pipelined multicast (§3.3, §4.3): the source repeatedly sends the
    {e same} message to every target.

    Three quantities bracket the optimal throughput (computing it
    exactly is NP-hard [7]):

    - {!scatter_lower_bound} — treat the copies as distinct messages
      ([Sum] law): always achievable, usually pessimistic;
    - {!best_tree_packing} — optimal time-sharing of multicast trees:
      achievable by construction, at least as good as any single tree;
    - {!max_lp_bound} — the [Max]-law LP of §3.3: a true upper bound,
      but {b not} always achievable.  On the Figure 2 platform it says
      one message per time unit while no schedule does better than the
      tree packing's 2/3 — the paper's central counterexample,
      reproduced in tests and experiment E5. *)

type tree = Platform.edge list
(** An arborescence rooted at the source whose leaves are targets. *)

val enumerate_trees :
  ?pool:Pool.t ->
  Platform.t ->
  source:Platform.node ->
  targets:Platform.node list ->
  tree list
(** All minimal multicast trees (every leaf a target, every node at most
    one parent, all edges reachable from the source).  Exponential in
    general: guarded to exemplar-scale platforms.  The decision-tree
    search is fanned out across [pool] (default {!Pool.default}); the
    result — order included — does not depend on the pool width.
    @raise Invalid_argument if the platform has more than 24 edges. *)

val max_lp_bound :
  ?rule:Simplex.pivot_rule ->
  ?warm:Lp.Warm.t ->
  ?cache:Lp.Cache.t ->
  Platform.t ->
  source:Platform.node ->
  targets:Platform.node list ->
  Collective.solution

val scatter_lower_bound :
  ?rule:Simplex.pivot_rule ->
  ?warm:Lp.Warm.t ->
  ?cache:Lp.Cache.t ->
  Platform.t ->
  source:Platform.node ->
  targets:Platform.node list ->
  Collective.solution

type packing = {
  platform : Platform.t;
  source : Platform.node;
  targets : Platform.node list;
  trees : tree list; (** trees with positive rate *)
  rates : Rat.t list; (** messages per time unit through each tree *)
  throughput : Rat.t; (** sum of rates *)
}

val best_tree_packing :
  ?rule:Simplex.pivot_rule ->
  ?warm:Lp.Warm.t ->
  ?cache:Lp.Cache.t ->
  Platform.t ->
  source:Platform.node ->
  targets:Platform.node list ->
  packing
(** Optimal throughput achievable by time-sharing multicast trees under
    the one-port constraints (LP over the enumerated trees). *)

val packing_of_trees :
  ?rule:Simplex.pivot_rule ->
  ?warm:Lp.Warm.t ->
  ?cache:Lp.Cache.t ->
  Platform.t ->
  source:Platform.node ->
  targets:Platform.node list ->
  tree list ->
  packing
(** Optimal time-sharing of a {e given} tree set (LP over the trees);
    {!best_tree_packing} is this applied to the full enumeration.
    Repeated packings over the same tree-set shape (per-phase sum-LPs)
    can thread [?warm]/[?cache] exactly as in {!Master_slave.solve}. *)

val heuristic_trees :
  ?count:int ->
  Platform.t ->
  source:Platform.node ->
  targets:Platform.node list ->
  tree list
(** Load-aware cheapest-insertion Steiner trees (the heuristic family of
    [7], usable beyond the enumeration guard): the first tree connects
    targets by cheapest insertion; each following tree is built with
    edge costs inflated where previous trees already load the ports, so
    the set is route-diverse.  Returns at most [count] (default 4)
    distinct trees; empty if some target is unreachable. *)

val heuristic_packing :
  ?count:int ->
  ?rule:Simplex.pivot_rule ->
  ?warm:Lp.Warm.t ->
  ?cache:Lp.Cache.t ->
  Platform.t ->
  source:Platform.node ->
  targets:Platform.node list ->
  packing
(** {!packing_of_trees} over {!heuristic_trees}: an achievable multicast
    throughput on platforms of any size. *)

val best_single_tree :
  Platform.t ->
  source:Platform.node ->
  targets:Platform.node list ->
  (tree * Rat.t) option
(** The single tree with the best sustainable rate
    [1 / (heaviest port load per message)], [None] if no tree reaches
    all targets. *)

val schedule_of_packing : packing -> Schedule.t
(** Periodic schedule for the packing; kinds are tree indices, and each
    transfer's activation delay is its depth inside its tree. *)

type run = {
  elapsed : Rat.t;
  periods : int;
  delivered : Rat.t array; (** per target (analytic, sim-cross-checked) *)
  throughput : Rat.t;
}

val simulate_packing : ?periods:int -> packing -> run
(** Strict execution on the simulator plus per-edge totals cross-check,
    as in {!Scatter.simulate}. *)
