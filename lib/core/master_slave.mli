(** Steady-state master–slave tasking (§3.1, §4).

    A master node holds a large collection of independent identical
    tasks; each task travels as a unit-size file and costs one
    computational unit wherever it is executed.  The LP below computes
    the optimal steady-state throughput [ntask(G)] in tasks per time
    unit, together with activity variables: [alpha_i] the fraction of
    time node [i] computes, [s_ij] the fraction of time [i] spends
    sending task files to [j].

    {v
      maximize   sum_i alpha_i / w_i
      subject to 0 <= alpha_i <= 1,  0 <= s_ij <= 1
                 sum_j s_ij <= 1                    (out-port)
                 sum_j s_ji <= 1                    (in-port)
                 s_jm = 0                           (master receives nothing)
                 sum_j s_ji/c_ji = alpha_i/w_i + sum_j s_ij/c_ij   (i <> m)
    v}

    The LP value is an upper bound on any schedule's steady-state
    throughput; {!schedule} reconstructs a periodic schedule that meets
    it exactly, which {!simulate} then executes (strictly) on the
    simulator. *)

type solution = {
  platform : Platform.t;
  master : Platform.node;
  ntask : Rat.t; (** optimal throughput, tasks per time unit *)
  alpha : Rat.t array; (** per node *)
  send_frac : Rat.t array; (** per edge: s_ij, after cycle cancelling *)
  task_flow : Flow.t; (** per edge: tasks per time unit = s_ij / c_ij *)
}

type budget =
  | Fixed of int
      (** hard per-reconstruction cap on incremental-repair work before
          the certified cold fallback (the integer handed down to
          {!Reconstruct}'s [?budget]) *)
  | Adaptive of adaptive
      (** per-solve cap scaled on the instance's standard-form row count
          and boosted while recent solves keep exceeding it — create
          with {!adaptive_budget} and thread the {e same} value through
          successive solves so the controller sees the history *)

and adaptive
(** Mutable controller state of an {!Adaptive} budget: an exponential
    boost level raised on every solve whose repairs blew the cap
    (observed through [Lp.Stats.repairs_budget_exceeded] deltas — on the
    caller's [?stats] when given, on an internal probe otherwise) and
    decayed after a streak of within-cap solves.  Budgets of either
    shape are result-neutral: the cold fallback is certified, so
    adaptivity tunes time, never answers. *)

val adaptive_budget : unit -> budget
(** A fresh {!Adaptive} budget at boost level 0. *)

val build_lp :
  Platform.t ->
  master:Platform.node ->
  Lp.model * Lp.var array * Lp.var array
(** The steady-state LP of the header, unsolved:
    [(model, alpha_vars, s_vars)] with one activity variable per node
    and one send variable per edge, in platform order.  Exposed so
    tests and benches can certify {e any} claimed solution — including
    {!solve_reduced}'s decomposed flows — against the model's own
    constraints via {!Lp.check_solution}. *)

val solve :
  ?rule:Simplex.pivot_rule ->
  ?solver:Lp.solver ->
  ?factorization:Lp.factorization ->
  ?warm:Lp.Warm.t ->
  ?cache:Lp.Cache.t ->
  ?recon:Reconstruct.Warm.t ->
  ?budget:budget ->
  ?stats:Lp.Stats.t ->
  Platform.t ->
  master:Platform.node ->
  solution
(** [?warm] and [?cache] accelerate repeated solves of structurally
    identical platforms (same nodes/edges, perturbed weights — the §5.5
    phase workload): the previous optimal basis is repaired in a few
    exact pivots, and exactly repeated instances return memoised.  Both
    are exact: the throughput is bit-identical to a cold solve.
    [?recon] extends the warm start downstream of the LP: the
    cycle-cancellation of the previous phase's flow is replayed instead
    of recomputed ({!Reconstruct.cancel}), and a later
    [schedule ?recon] repairs the previous slots.  [?budget] bounds the
    incremental-repair work before certified cold fallbacks take over
    ({!Reconstruct.cancel}'s and {!Reconstruct.reconstruct}'s
    [?budget]): {!Fixed} passes the cap through verbatim, {!Adaptive}
    resolves it per solve from the instance size and the recent
    exceeded history.  [?stats] accumulates exact
    pivot/refactorisation counts and reconstruction effort.
    @raise Failure if the LP is somehow not optimal (cannot happen on a
    valid platform: the zero schedule is feasible and throughput is
    bounded). *)

val try_solve :
  ?rule:Simplex.pivot_rule ->
  ?solver:Lp.solver ->
  ?factorization:Lp.factorization ->
  ?warm:Lp.Warm.t ->
  ?cache:Lp.Cache.t ->
  ?recon:Reconstruct.Warm.t ->
  ?budget:budget ->
  ?stats:Lp.Stats.t ->
  Platform.t ->
  master:Platform.node ->
  (solution, [ `Infeasible | `Unbounded ]) result
(** Exception-free {!solve}: a non-optimal LP outcome is surfaced as a
    variant.  Failure-aware planners use this on surviving
    sub-platforms, where a pathological restriction must degrade into a
    structured report rather than escape as an exception. *)

val solve_lp_only :
  ?rule:Simplex.pivot_rule ->
  ?solver:Lp.solver ->
  ?factorization:Lp.factorization ->
  ?warm:Lp.Warm.t ->
  ?cache:Lp.Cache.t ->
  ?stats:Lp.Stats.t ->
  Platform.t ->
  master:Platform.node ->
  Lp.model * Lp.result
(** The raw model and solver outcome, for inspection and tests. *)

val solve_reduced :
  ?rule:Simplex.pivot_rule ->
  ?solver:Lp.solver ->
  ?factorization:Lp.factorization ->
  ?recon:Reconstruct.Warm.t ->
  ?stats:Lp.Stats.t ->
  Platform.t ->
  master:Platform.node ->
  solution
(** Structurally reduced {!solve}, built for platforms three orders of
    magnitude beyond what the monolithic LP can carry.  When the part
    of the platform reachable from the master is a tree (no undirected
    cycles, no parallel links — every {!Platform_gen.random_tree} /
    {!Platform_gen.balanced_tree} qualifies), the LP decomposes
    exactly: one tiny fractional-knapsack LP per internal node, swept
    bottom-up (subtree absorption capacities) and then top-down (exact
    scaling of each saturated plan to the flow that actually arrives).
    Total work is linear in the number of nodes times the knapsack
    cost, instead of a simplex run over an [O(n)]-row basis.  Any
    other platform falls back to the full LP run through the
    {!Lp.Reduce} presolve.

    The returned throughput is bit-identical to {!solve}'s on the same
    platform, and the flow satisfies every LP constraint exactly — the
    test-suite asserts both against {!Lp.check_solution}.
    @raise Failure as {!solve}. *)

val schedule :
  ?recon:Reconstruct.Warm.t ->
  ?strict:bool ->
  ?budget:budget ->
  ?stats:Lp.Stats.t ->
  solution ->
  Schedule.t
(** Periodic schedule with integer task counts: the period is the lcm of
    the denominators of the per-edge task flows and per-node task rates
    (§3.1's construction).  With [?recon] the previous phase's schedule
    is repaired instead of rebuilt ({!Reconstruct.reconstruct}); with
    [?strict] the warm result is certified against a cold rebuild. *)

val tasks_per_period : Schedule.t -> solution -> Rat.t
(** Equals [ntask * period]. *)

type run = {
  elapsed : Rat.t;
  completed : Rat.t; (** tasks finished, from the simulator's counters *)
  upper_bound : Rat.t; (** ntask * elapsed: no schedule can beat this *)
  expected : Rat.t;
      (** analytic prediction [sum_i n_i max(0, K - delay_i)]: the
          constant-in-K gap of §4.2 *)
}

val simulate : ?periods:int -> solution -> run
(** Execute the reconstructed schedule for [periods] periods (default
    8) in strict mode — raising {!Event_sim.Conflict} if the
    reconstruction ever violates the one-port model — and report
    measured versus analytic throughput. *)

val check_buffers : Schedule.t -> master:Platform.node -> periods:int -> (unit, string) result
(** Logical replay of the task buffers: period by period, every node's
    sends and computations must be covered by task files received in
    {e earlier} periods (the master draws from its initial stock).  The
    pipeline delays attached by {!schedule} make this hold from the very
    first active period — this check is the causality complement to the
    simulator's resource-conflict check. *)
