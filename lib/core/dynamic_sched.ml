module R = Rat
module P = Platform

type strategy = Static | Reactive | Oracle

type scenario = {
  platform : P.t;
  master : P.node;
  cpu_traces : (P.node * Event_sim.trace) list;
  bw_traces : (P.edge * Event_sim.trace) list;
  phase : R.t;
  phases : int;
}

let validate_scenario sc =
  if R.sign sc.phase <= 0 then
    invalid_arg "Dynamic_sched: non-positive phase length";
  if sc.phases <= 0 then invalid_arg "Dynamic_sched: no phases";
  let check (_, tr) =
    List.iter
      (fun (_, m) ->
        if R.sign m <= 0 then
          invalid_arg "Dynamic_sched: multipliers must stay positive")
      tr
  in
  List.iter check sc.cpu_traces;
  List.iter
    (fun (e, tr) -> check (e, tr))
    sc.bw_traces

(* Traces are compiled once per run into breakpoint-sorted arrays and
   queried by binary search — [plan_for] asks for every node and every
   edge at every phase boundary, so the per-query cost matters.  Sorting
   also fixes a semantic trap: folding over the raw list makes the
   *textually last* matching entry win, so an out-of-order trace
   silently answers with the wrong segment.  Here the breakpoint with
   the largest time <= t wins, whatever the list order; among equal
   times the last entry wins (the sorted-input behaviour of the old
   fold). *)
type compiled = { bp_times : R.t array; bp_mults : R.t array }

let empty_compiled = { bp_times = [||]; bp_mults = [||] }

let compile_trace tr =
  let sorted = List.stable_sort (fun (t1, _) (t2, _) -> R.compare t1 t2) tr in
  let rec dedup = function
    | (t1, _) :: ((t2, _) :: _ as rest) when R.equal t1 t2 -> dedup rest
    | x :: rest -> x :: dedup rest
    | [] -> []
  in
  let l = dedup sorted in
  {
    bp_times = Array.of_list (List.map fst l);
    bp_mults = Array.of_list (List.map snd l);
  }

(* rightmost breakpoint <= time; implicit multiplier 1 before the first *)
let compiled_at ct time =
  let lo = ref 0 and hi = ref (Array.length ct.bp_times) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if R.compare ct.bp_times.(mid) time <= 0 then lo := mid + 1 else hi := mid
  done;
  if !lo = 0 then R.one else ct.bp_mults.(!lo - 1)

let multiplier_at trace time = compiled_at (compile_trace trace) time

(* sorted/deduplicated assoc form, for handing to the simulator *)
let normalize_trace tr =
  let ct = compile_trace tr in
  Array.to_list (Array.map2 (fun t m -> (t, m)) ct.bp_times ct.bp_mults)

(* per-node / per-edge compiled traces; first assoc entry wins, like
   [List.assoc_opt] did *)
let compile_scenario sc =
  let p = sc.platform in
  let node_cts = Array.make (P.num_nodes p) empty_compiled in
  let edge_cts = Array.make (P.num_edges p) empty_compiled in
  List.iter
    (fun (i, tr) -> node_cts.(i) <- compile_trace tr)
    (List.rev sc.cpu_traces);
  List.iter
    (fun (e, tr) -> edge_cts.(e) <- compile_trace tr)
    (List.rev sc.bw_traces);
  (node_cts, edge_cts)

(* platform scaled by per-node / per-edge multipliers: a multiplier m
   divides the time per unit, i.e. w' = w/m and c' = c/m *)
let scaled_platform sc node_mult edge_mult =
  let p = sc.platform in
  P.create
    ~names:(Array.of_list (List.map (P.name p) (P.nodes p)))
    ~weights:
      (Array.of_list
         (List.map
            (fun i ->
              match P.weight p i with
              | Ext_rat.Inf -> Ext_rat.Inf
              | Ext_rat.Fin w -> Ext_rat.Fin (R.div w (node_mult i)))
            (P.nodes p)))
    ~edges:
      (List.map
         (fun e ->
           ( P.edge_src p e,
             P.edge_dst p e,
             R.div (P.edge_cost p e) (edge_mult e) ))
         (P.edges p))

(* plan for one phase, at single-task granularity so that a slave only
   computes what has actually been delivered (a stalled link therefore
   stalls the dependent computation, as it would in reality):
   - per master out-edge: an integral number of unit task files;
   - master's own work: an integral number of unit tasks.
   Edge indices carry over because scaled_platform preserves edge
   order. *)
let phase_plan sol phase =
  let p = sol.Master_slave.platform in
  let transfers =
    List.filter_map
      (fun e ->
        let items = R.floor (R.mul phase sol.Master_slave.task_flow.(e)) in
        let items = R.of_bigint items in
        if R.sign items > 0 then Some (e, R.to_int_exn items) else None)
      (P.edges p)
  in
  let master_tasks =
    let i = sol.Master_slave.master in
    R.to_int_exn
      (R.of_bigint
         (R.floor
            (R.mul phase
               (R.mul sol.Master_slave.alpha.(i) (P.speed p i)))))
  in
  (transfers, master_tasks)

type outcome = {
  strategy : strategy;
  completed : R.t;
  per_phase : R.t list;
}

let total_work sim p =
  R.sum (List.map (fun i -> Event_sim.completed_work sim i) (P.nodes p))

(* the data-driven executor below only handles flows that go directly
   from the master to the consuming slave (stars, or graphs whose LP
   solution happens to use only master links) *)
let check_single_hop sc sol =
  let p = sc.platform in
  Array.iteri
    (fun e f ->
      if R.sign f > 0 && P.edge_src p e <> sc.master then
        invalid_arg
          "Dynamic_sched: task flow uses relays; only master-direct flows \
           are supported by the phase executor")
    sol.Master_slave.task_flow

let run ?cache ?(reuse = true) sc strategy =
  validate_scenario sc;
  let p = sc.platform in
  let node_cts, edge_cts = compile_scenario sc in
  let sim =
    Event_sim.create
      ~cpu_traces:(List.map (fun (i, tr) -> (i, normalize_trace tr)) sc.cpu_traces)
      ~bw_traces:(List.map (fun (e, tr) -> (e, normalize_trace tr)) sc.bw_traces)
      p
  in
  (* the per-phase re-solves differ only in scaled weights, so the
     previous basis warm-starts the next solve and flat trace segments
     (repeated multipliers) hit the cache outright; [~reuse:false]
     restores the cold per-phase solves for baseline measurements *)
  let cache =
    match cache with
    | Some _ as c -> c
    | None -> if reuse then Some (Lp.Cache.create ()) else None
  in
  let warm = if reuse then Some (Lp.Warm.create ()) else None in
  let solve_scaled node_mult edge_mult =
    Master_slave.solve ?warm ?cache
      (scaled_platform sc node_mult edge_mult)
      ~master:sc.master
  in
  let static_sol = Master_slave.solve ?warm ?cache p ~master:sc.master in
  (* one forecaster per node and per edge (reactive strategy) *)
  let node_fc = Array.init (P.num_nodes p) (fun _ -> Forecast.create ()) in
  let edge_fc = Array.init (P.num_edges p) (fun _ -> Forecast.create ()) in
  let marks = ref [] in
  let plan_for time =
    match strategy with
    | Static -> static_sol
    | Oracle ->
      solve_scaled
        (fun i -> compiled_at node_cts.(i) time)
        (fun e -> compiled_at edge_cts.(e) time)
    | Reactive ->
      (* probe current performance, fold into the forecasters, and plan
         with the prediction *)
      List.iter
        (fun i -> Forecast.observe node_fc.(i) (compiled_at node_cts.(i) time))
        (P.nodes p);
      List.iter
        (fun e -> Forecast.observe edge_fc.(e) (compiled_at edge_cts.(e) time))
        (P.edges p);
      solve_scaled
        (fun i -> Forecast.predict node_fc.(i))
        (fun e -> Forecast.predict edge_fc.(e))
  in
  check_single_hop sc static_sol;
  for k = 0 to sc.phases - 1 do
    let t0 = R.mul (R.of_int k) sc.phase in
    Event_sim.at sim t0 (fun sim ->
        marks := total_work sim p :: !marks;
        let sol = plan_for t0 in
        check_single_hop sc sol;
        let transfers, master_tasks = phase_plan sol sc.phase in
        (* round-robin across slaves: unit task files, each enabling one
           unit of computation on arrival *)
        let queues = Array.of_list transfers in
        let remaining = ref (Array.fold_left (fun a (_, n) -> a + n) 0 queues) in
        let counts = Array.map snd queues in
        while !remaining > 0 do
          Array.iteri
            (fun idx (e, _) ->
              if counts.(idx) > 0 then begin
                counts.(idx) <- counts.(idx) - 1;
                decr remaining;
                let dst = P.edge_dst p e in
                Event_sim.submit sim (Event_sim.Transfer (e, R.one))
                  ~on_done:(fun sim ->
                    Event_sim.submit sim (Event_sim.Compute (dst, R.one)))
              end)
            queues
        done;
        if master_tasks > 0 then
          Event_sim.submit sim
            (Event_sim.Compute (sc.master, R.of_int master_tasks)))
  done;
  let horizon = R.mul (R.of_int sc.phases) sc.phase in
  Event_sim.run_until sim horizon;
  let completed = total_work sim p in
  let boundaries = List.rev (completed :: !marks) in
  let per_phase =
    match boundaries with
    | [] -> []
    | first :: rest ->
      let rec diffs prev = function
        | [] -> []
        | x :: xs -> R.sub x prev :: diffs x xs
      in
      diffs first rest
  in
  { strategy; completed; per_phase }

let oracle_throughput_bound ?cache ?(reuse = true) sc =
  validate_scenario sc;
  let node_cts, edge_cts = compile_scenario sc in
  let cache =
    match cache with
    | Some _ as c -> c
    | None -> if reuse then Some (Lp.Cache.create ()) else None
  in
  let warm = if reuse then Some (Lp.Warm.create ()) else None in
  let total = ref R.zero in
  for k = 0 to sc.phases - 1 do
    let t0 = R.mul (R.of_int k) sc.phase in
    let sol =
      Master_slave.solve ?warm ?cache
        (scaled_platform sc
           (fun i -> compiled_at node_cts.(i) t0)
           (fun e -> compiled_at edge_cts.(e) t0))
        ~master:sc.master
    in
    total := R.add !total (R.mul sc.phase sol.Master_slave.ntask)
  done;
  !total
