module R = Rat
module P = Platform

type strategy = Static | Reactive | Oracle | Robust

type scenario = {
  platform : P.t;
  master : P.node;
  cpu_traces : (P.node * Event_sim.trace) list;
  bw_traces : (P.edge * Event_sim.trace) list;
  phase : R.t;
  phases : int;
}

let validate_scenario ?(allow_outages = false) sc =
  if R.sign sc.phase <= 0 then
    invalid_arg "Dynamic_sched: non-positive phase length";
  if sc.phases <= 0 then invalid_arg "Dynamic_sched: no phases";
  let check (_, tr) =
    List.iter
      (fun (_, m) ->
        if R.sign m < 0 then
          invalid_arg "Dynamic_sched: negative multiplier";
        if (not allow_outages) && R.is_zero m then
          invalid_arg "Dynamic_sched: multipliers must stay positive")
      tr
  in
  List.iter check sc.cpu_traces;
  List.iter
    (fun (e, tr) -> check (e, tr))
    sc.bw_traces

(* Traces are compiled once per run into breakpoint-sorted arrays and
   queried by binary search — [plan_for] asks for every node and every
   edge at every phase boundary, so the per-query cost matters.  Sorting
   also fixes a semantic trap: folding over the raw list makes the
   *textually last* matching entry win, so an out-of-order trace
   silently answers with the wrong segment.  Here the breakpoint with
   the largest time <= t wins, whatever the list order; among equal
   times the last entry wins (the sorted-input behaviour of the old
   fold). *)
type compiled = { bp_times : R.t array; bp_mults : R.t array }

let empty_compiled = { bp_times = [||]; bp_mults = [||] }

let compile_trace tr =
  let sorted = List.stable_sort (fun (t1, _) (t2, _) -> R.compare t1 t2) tr in
  let rec dedup = function
    | (t1, _) :: ((t2, _) :: _ as rest) when R.equal t1 t2 -> dedup rest
    | x :: rest -> x :: dedup rest
    | [] -> []
  in
  let l = dedup sorted in
  {
    bp_times = Array.of_list (List.map fst l);
    bp_mults = Array.of_list (List.map snd l);
  }

(* rightmost breakpoint <= time; implicit multiplier 1 before the first *)
let compiled_at ct time =
  let lo = ref 0 and hi = ref (Array.length ct.bp_times) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if R.compare ct.bp_times.(mid) time <= 0 then lo := mid + 1 else hi := mid
  done;
  if !lo = 0 then R.one else ct.bp_mults.(!lo - 1)

let multiplier_at trace time = compiled_at (compile_trace trace) time

(* sorted/deduplicated assoc form, for handing to the simulator *)
let normalize_trace tr =
  let ct = compile_trace tr in
  Array.to_list (Array.map2 (fun t m -> (t, m)) ct.bp_times ct.bp_mults)

(* per-node / per-edge compiled traces; first assoc entry wins, like
   [List.assoc_opt] did *)
let compile_scenario sc =
  let p = sc.platform in
  let node_cts = Array.make (P.num_nodes p) empty_compiled in
  let edge_cts = Array.make (P.num_edges p) empty_compiled in
  List.iter
    (fun (i, tr) -> node_cts.(i) <- compile_trace tr)
    (List.rev sc.cpu_traces);
  List.iter
    (fun (e, tr) -> edge_cts.(e) <- compile_trace tr)
    (List.rev sc.bw_traces);
  (node_cts, edge_cts)

(* platform scaled by per-node / per-edge multipliers: a multiplier m
   divides the time per unit, i.e. w' = w/m and c' = c/m *)
let scaled_platform sc node_mult edge_mult =
  let p = sc.platform in
  P.create
    ~names:(Array.of_list (List.map (P.name p) (P.nodes p)))
    ~weights:
      (Array.of_list
         (List.map
            (fun i ->
              match P.weight p i with
              | Ext_rat.Inf -> Ext_rat.Inf
              | Ext_rat.Fin w -> Ext_rat.Fin (R.div w (node_mult i)))
            (P.nodes p)))
    ~edges:
      (List.map
         (fun e ->
           ( P.edge_src p e,
             P.edge_dst p e,
             R.div (P.edge_cost p e) (edge_mult e) ))
         (P.edges p))

(* Plan for one phase, at single-task granularity so that a slave only
   computes what has actually been delivered (a stalled link therefore
   stalls the dependent computation, as it would in reality).

   The LP task flow is acyclic (cycle-cancelled by {!Reconstruct}) and
   conserved at every non-master node — in = alpha*speed + out, the
   LP's own conservation rows — so it decomposes exactly into
   master-rooted paths: repeatedly follow, from the master, the
   lowest-indexed edge with positive remaining flow until the first
   node with positive remaining compute rate, and subtract the
   bottleneck along the walk.  The invariant
   [rem_in = rem_comp + rem_out] is preserved by every subtraction, so
   a walk that cannot absorb at a node always finds an onward edge;
   acyclicity bounds its length, and each round zeroes an edge or a
   node, so there are at most |E| + |V| paths.  On a star every edge
   is its own single-hop path carrying exactly the old per-edge flow,
   so star plans (and the curated expectations built on them) are
   unchanged.

   Each path then carries floor(phase * rate) unit task files
   (delivered hop by hop, computing one unit at the terminal node);
   the master's own work is floored the same way. *)
let phase_plan sol phase =
  let p = sol.Master_slave.platform in
  let master = sol.Master_slave.master in
  let rem = Array.copy sol.Master_slave.task_flow in
  let comp =
    Array.init (P.num_nodes p) (fun i ->
        if i = master then R.zero
        else R.mul sol.Master_slave.alpha.(i) (P.speed p i))
  in
  let out_edges =
    Array.init (P.num_nodes p) (fun i -> List.sort compare (P.out_edges p i))
  in
  let next_edge v =
    List.find_opt (fun e -> R.sign rem.(e) > 0) out_edges.(v)
  in
  let paths = ref [] in
  let rec walk v acc bottleneck =
    if v <> master && R.sign comp.(v) > 0 then begin
      let amount = R.min bottleneck comp.(v) in
      comp.(v) <- R.sub comp.(v) amount;
      let path = List.rev acc in
      List.iter (fun e -> rem.(e) <- R.sub rem.(e) amount) path;
      paths := (path, amount) :: !paths
    end
    else
      match next_edge v with
      | Some e -> walk (P.edge_dst p e) (e :: acc) (R.min bottleneck rem.(e))
      | None ->
        invalid_arg
          "Dynamic_sched: task flow is not conserved (cannot decompose \
           into master-rooted paths)"
  in
  let rec drain () =
    match next_edge master with
    | None -> ()
    | Some e ->
      walk (P.edge_dst p e) [ e ] rem.(e);
      drain ()
  in
  drain ();
  let paths =
    List.filter_map
      (fun (path, rate) ->
        let items = R.to_int_exn (R.of_bigint (R.floor (R.mul phase rate))) in
        if items > 0 then Some (path, items) else None)
      (List.rev !paths)
  in
  let master_tasks =
    R.to_int_exn
      (R.of_bigint
         (R.floor
            (R.mul phase
               (R.mul sol.Master_slave.alpha.(master) (P.speed p master)))))
  in
  (paths, master_tasks)

type loss_report = {
  timed_out_transfers : int;
  cancelled_transfers : int;
  retries : int;
  lost_tasks : int;
  degraded_phases : int;
  dead_nodes : int;
  dead_edges : int;
}

let no_losses =
  {
    timed_out_transfers = 0;
    cancelled_transfers = 0;
    retries = 0;
    lost_tasks = 0;
    degraded_phases = 0;
    dead_nodes = 0;
    dead_edges = 0;
  }

type outcome = {
  strategy : strategy;
  completed : R.t;
  per_phase : R.t list;
  losses : loss_report;
}

let total_work sim p =
  R.sum (List.map (fun i -> Event_sim.completed_work sim i) (P.nodes p))

(* Surviving subplatform: what the master still reaches over links with a
   positive multiplier, scaled by the given multipliers; a surviving node
   whose CPU multiplier is zero keeps relaying but cannot compute
   (weight +oo).  A non-positive multiplier marks the resource dead. *)
let surviving_scaled sc ~node_mult ~edge_mult =
  let p = sc.platform in
  let dead_bw e = R.sign (edge_mult e) <= 0 in
  let dead_cpu i = R.sign (node_mult i) <= 0 in
  let reachable =
    P.reachable_via p ~alive:(fun e -> not (dead_bw e)) sc.master
  in
  let scaled =
    scaled_platform sc
      (fun i -> if dead_cpu i then R.one else node_mult i)
      (fun e -> if dead_bw e then R.one else edge_mult e)
  in
  P.restrict scaled
    ~keep_node:(fun i -> reachable.(i))
    ~keep_edge:(fun e -> not (dead_bw e))
    ~weights:(fun i ->
      if dead_cpu i then Ext_rat.Inf else P.weight scaled i)

let surviving_platform sc ~at =
  validate_scenario ~allow_outages:true sc;
  let node_cts, edge_cts = compile_scenario sc in
  surviving_scaled sc
    ~node_mult:(fun i -> compiled_at node_cts.(i) at)
    ~edge_mult:(fun e -> compiled_at edge_cts.(e) at)

let has_compute sub =
  List.exists
    (fun i ->
      match P.weight sub i with Ext_rat.Inf -> false | Ext_rat.Fin _ -> true)
    (P.nodes sub)

let make_cache cache reuse =
  match cache with
  | Some _ as c -> c
  | None -> if reuse then Some (Lp.Cache.create ()) else None

let run_classic ?cache ?(reuse = true) ?budget ?stats sc strategy =
  let p = sc.platform in
  let node_cts, edge_cts = compile_scenario sc in
  let sim =
    Event_sim.create
      ~cpu_traces:(List.map (fun (i, tr) -> (i, normalize_trace tr)) sc.cpu_traces)
      ~bw_traces:(List.map (fun (e, tr) -> (e, normalize_trace tr)) sc.bw_traces)
      p
  in
  (* the per-phase re-solves differ only in scaled weights, so the
     previous basis warm-starts the next solve and flat trace segments
     (repeated multipliers) hit the cache outright; [~reuse:false]
     restores the cold per-phase solves for baseline measurements *)
  let cache = make_cache cache reuse in
  let warm = if reuse then Some (Lp.Warm.create ()) else None in
  let recon = if reuse then Some (Reconstruct.Warm.create ()) else None in
  let solve_scaled node_mult edge_mult =
    Master_slave.solve ?warm ?cache ?recon ?budget ?stats
      (scaled_platform sc node_mult edge_mult)
      ~master:sc.master
  in
  let static_sol =
    Master_slave.solve ?warm ?cache ?recon ?budget ?stats p ~master:sc.master
  in
  (* one forecaster per node and per edge (reactive strategy) *)
  let node_fc = Array.init (P.num_nodes p) (fun _ -> Forecast.create ()) in
  let edge_fc = Array.init (P.num_edges p) (fun _ -> Forecast.create ()) in
  let marks = ref [] in
  let plan_for time =
    match strategy with
    | Robust -> assert false (* handled by [run_robust] *)
    | Static -> static_sol
    | Oracle ->
      solve_scaled
        (fun i -> compiled_at node_cts.(i) time)
        (fun e -> compiled_at edge_cts.(e) time)
    | Reactive ->
      (* probe current performance, fold into the forecasters, and plan
         with the prediction *)
      List.iter
        (fun i -> Forecast.observe node_fc.(i) (compiled_at node_cts.(i) time))
        (P.nodes p);
      List.iter
        (fun e -> Forecast.observe edge_fc.(e) (compiled_at edge_cts.(e) time))
        (P.edges p);
      solve_scaled
        (fun i -> Forecast.predict node_fc.(i))
        (fun e -> Forecast.predict edge_fc.(e))
  in
  (* store-and-forward delivery of one unit task file along a path: each
     hop is submitted only when the previous one lands (so a stalled
     link stalls everything behind it, hop by hop), and the terminal
     arrival enables one unit of computation.  Single-hop paths reduce
     to the old direct submit *)
  let rec submit_chain sim path =
    match path with
    | [] -> ()
    | [ e ] ->
      let dst = P.edge_dst p e in
      Event_sim.submit sim (Event_sim.Transfer (e, R.one))
        ~on_done:(fun sim ->
          Event_sim.submit sim (Event_sim.Compute (dst, R.one)))
    | e :: rest ->
      Event_sim.submit sim (Event_sim.Transfer (e, R.one))
        ~on_done:(fun sim -> submit_chain sim rest)
  in
  for k = 0 to sc.phases - 1 do
    let t0 = R.mul (R.of_int k) sc.phase in
    Event_sim.at sim t0 (fun sim ->
        marks := total_work sim p :: !marks;
        let sol = plan_for t0 in
        let transfers, master_tasks = phase_plan sol sc.phase in
        (* round-robin across paths: unit task files, each enabling one
           unit of computation on terminal arrival *)
        let queues = Array.of_list transfers in
        let remaining = ref (Array.fold_left (fun a (_, n) -> a + n) 0 queues) in
        let counts = Array.map snd queues in
        while !remaining > 0 do
          Array.iteri
            (fun idx (path, _) ->
              if counts.(idx) > 0 then begin
                counts.(idx) <- counts.(idx) - 1;
                decr remaining;
                submit_chain sim path
              end)
            queues
        done;
        if master_tasks > 0 then
          Event_sim.submit sim
            (Event_sim.Compute (sc.master, R.of_int master_tasks)))
  done;
  let horizon = R.mul (R.of_int sc.phases) sc.phase in
  Event_sim.run_until sim horizon;
  let completed = total_work sim p in
  let boundaries = List.rev (completed :: !marks) in
  let per_phase =
    match boundaries with
    | [] -> []
    | first :: rest ->
      let rec diffs prev = function
        | [] -> []
        | x :: xs -> R.sub x prev :: diffs x xs
      in
      diffs first rest
  in
  { strategy; completed; per_phase; losses = no_losses }

(* phase-boundary differences of the cumulative-work marks *)
let per_phase_of marks completed =
  match List.rev (completed :: marks) with
  | [] -> []
  | first :: rest ->
    let rec diffs prev = function
      | [] -> []
      | x :: xs -> R.sub x prev :: diffs x xs
    in
    diffs first rest

(* exact elementwise equality of two multiplier snapshots *)
let mults_equal a b =
  let n = Array.length a in
  let rec go i = i >= n || (R.equal a.(i) b.(i) && go (i + 1)) in
  Array.length b = n && go 0

(* ---- crash recovery ---------------------------------------------------

   A checkpointed Robust run persists, at a configurable epoch cadence,
   everything needed to continue the run bit-identically after a crash:
   the per-epoch *decision log* (what each boundary's planner decided,
   in original platform indices), a snapshot of the executor's
   boundary-start state (arrears, backlog, deficits, loss counters,
   failure flags, work marks — all exact), and the serialized warm LP
   basis.  [resume] replays the logged decisions through a fresh
   simulator — deterministic event replay, no LP solves — validates the
   rebuilt state against the stored snapshot at the checkpointed
   boundary, restores the warm basis, and continues live from there.
   LP results of the live suffix coincide with the uninterrupted run's
   because every checkpointed run writes its solves through a
   {!Solve_store} disk tier in the same directory: the resumed run's
   cold memo hits the disk entries the original run wrote.  A missing,
   truncated, corrupt, version-skewed or mismatching checkpoint is
   quarantined and degrades to a cold full run — recovery can cost
   time, never answers. *)

module Checkpoint = struct
  type config = { dir : string; every : int }

  exception Halted of int
end

(* one boundary's planning decision, in original platform indices *)
type decision =
  | D_degraded
  | D_plan of (P.edge list * int) list * int
      (* per-path unit-file counts, raw master floor (pre-adjustment) *)

(* executor state at the *start* of a boundary callback (before the
   marks push and the cancel sweep) — everything a replay must
   reproduce exactly *)
type snapshot = {
  s_arrears : (P.edge list * int) list list;
  s_backlog : int list;
  s_master_deficit : int;
  s_timed_out : int;
  s_cancelled : int;
  s_retries : int;
  s_lost : int;
  s_degraded : int;
  s_dead_cpu : bool array;
  s_dead_bw : bool array;
  s_marks : R.t list; (* newest first, as maintained by the run *)
}

type ckpt_record = {
  c_epoch : int; (* boundary the snapshot was taken at *)
  c_reuse : bool;
  c_log : decision list; (* oldest first; length = c_epoch *)
  c_snap : snapshot;
  c_basis : string option; (* {!Lp.export_basis} of the warm slot *)
}

let ckpt_format = "steady-ckpt 1"

let encode_ckpt r =
  let b = Buffer.create 1024 in
  let int i =
    Buffer.add_string b (string_of_int i);
    Buffer.add_char b '\n'
  in
  let batch bt =
    int (List.length bt);
    List.iter
      (fun (path, cnt) ->
        int cnt;
        int (List.length path);
        List.iter int path)
      bt
  in
  Buffer.add_string b ckpt_format;
  Buffer.add_char b '\n';
  int r.c_epoch;
  int (if r.c_reuse then 1 else 0);
  int (List.length r.c_log);
  List.iter
    (function
      | D_degraded -> Buffer.add_string b "D\n"
      | D_plan (paths, mt) ->
        Buffer.add_string b "P\n";
        int mt;
        batch paths)
    r.c_log;
  let s = r.c_snap in
  int s.s_master_deficit;
  int s.s_timed_out;
  int s.s_cancelled;
  int s.s_retries;
  int s.s_lost;
  int s.s_degraded;
  int (List.length s.s_backlog);
  List.iter int s.s_backlog;
  int (List.length s.s_arrears);
  List.iter batch s.s_arrears;
  Buffer.add_string b
    (String.init (Array.length s.s_dead_cpu) (fun i ->
         if s.s_dead_cpu.(i) then '1' else '0'));
  Buffer.add_char b '\n';
  Buffer.add_string b
    (String.init (Array.length s.s_dead_bw) (fun e ->
         if s.s_dead_bw.(e) then '1' else '0'));
  Buffer.add_char b '\n';
  int (List.length s.s_marks);
  List.iter
    (fun mk ->
      Buffer.add_string b (R.to_string mk);
      Buffer.add_char b '\n')
    s.s_marks;
  (match r.c_basis with
  | None -> Buffer.add_string b "B-\n"
  | Some bs ->
    Buffer.add_string b "B\n";
    int (String.length bs);
    Buffer.add_string b bs;
    Buffer.add_char b '\n');
  Buffer.contents b

(* Strict structural decoder: any deviation — bad magic, counts out of
   range, indices off the platform, trailing bytes — yields [None], and
   the caller quarantines the record and cold-starts.  Like
   {!Lp.import_basis} this must never raise. *)
let decode_ckpt ~nodes ~edges ~phases raw =
  let len = String.length raw in
  let pos = ref 0 in
  let fail () = raise Exit in
  let line () =
    if !pos >= len then fail ();
    match String.index_from_opt raw !pos '\n' with
    | None -> fail ()
    | Some j ->
      let s = String.sub raw !pos (j - !pos) in
      pos := j + 1;
      s
  in
  let int () =
    match int_of_string_opt (line ()) with Some i -> i | None -> fail ()
  in
  let nonneg () =
    let i = int () in
    if i < 0 then fail ();
    i
  in
  (* explicit in-order loop: the order of the stateful reads matters *)
  let list n f =
    if n < 0 || n > 1_000_000 then fail ();
    let rec go n acc = if n = 0 then List.rev acc else go (n - 1) (f () :: acc) in
    go n []
  in
  let path_entry () =
    let cnt = nonneg () in
    let plen = int () in
    if plen < 1 || plen > edges then fail ();
    let path =
      list plen (fun () ->
          let e = int () in
          if e < 0 || e >= edges then fail ();
          e)
    in
    (path, cnt)
  in
  let batch () = list (int ()) path_entry in
  let bits k =
    let l = line () in
    if String.length l <> k then fail ();
    Array.init k (fun i ->
        match l.[i] with '1' -> true | '0' -> false | _ -> fail ())
  in
  try
    if not (String.equal (line ()) ckpt_format) then fail ();
    let epoch = int () in
    if epoch < 1 || epoch >= phases then fail ();
    let reuse = match int () with 0 -> false | 1 -> true | _ -> fail () in
    let nlog = int () in
    if nlog <> epoch then fail ();
    let log =
      list nlog (fun () ->
          match line () with
          | "D" -> D_degraded
          | "P" ->
            let mt = nonneg () in
            let paths = batch () in
            D_plan (paths, mt)
          | _ -> fail ())
    in
    let master_deficit = nonneg () in
    let timed_out = nonneg () in
    let cancelled = nonneg () in
    let retries = nonneg () in
    let lost = nonneg () in
    let degraded = nonneg () in
    let backlog = list (int ()) (fun () -> nonneg ()) in
    let arrears = list (int ()) batch in
    let dead_cpu = bits nodes in
    let dead_bw = bits edges in
    let nmarks = int () in
    if nmarks <> epoch then fail ();
    let marks = list nmarks (fun () -> R.of_string (line ())) in
    let basis =
      match line () with
      | "B-" -> None
      | "B" ->
        let bl = int () in
        if bl < 0 || !pos + bl >= len then fail ();
        let s = String.sub raw !pos bl in
        if raw.[!pos + bl] <> '\n' then fail ();
        pos := !pos + bl + 1;
        Some s
      | _ -> fail ()
    in
    if !pos <> len then fail ();
    Some
      {
        c_epoch = epoch;
        c_reuse = reuse;
        c_log = log;
        c_snap =
          {
            s_arrears = arrears;
            s_backlog = backlog;
            s_master_deficit = master_deficit;
            s_timed_out = timed_out;
            s_cancelled = cancelled;
            s_retries = retries;
            s_lost = lost;
            s_degraded = degraded;
            s_dead_cpu = dead_cpu;
            s_dead_bw = dead_bw;
            s_marks = marks;
          };
        c_basis = basis;
      }
  with Exit | Failure _ | Invalid_argument _ | Division_by_zero -> None

(* canonical store key of a scenario: the checkpoint record binds to the
   exact platform, traces, horizon and reuse flag — a different run in
   the same store directory can never pick it up by accident *)
let scenario_key sc ~reuse =
  let b = Buffer.create 512 in
  Buffer.add_string b "ckpt!v1!";
  let p = sc.platform in
  List.iter
    (fun i ->
      Buffer.add_string b (P.name p i);
      Buffer.add_char b '=';
      (match P.weight p i with
      | Ext_rat.Inf -> Buffer.add_string b "inf"
      | Ext_rat.Fin w -> Buffer.add_string b (R.to_string w));
      Buffer.add_char b ';')
    (P.nodes p);
  Buffer.add_char b '#';
  List.iter
    (fun e ->
      Buffer.add_string b (string_of_int (P.edge_src p e));
      Buffer.add_char b '>';
      Buffer.add_string b (string_of_int (P.edge_dst p e));
      Buffer.add_char b ':';
      Buffer.add_string b (R.to_string (P.edge_cost p e));
      Buffer.add_char b ';')
    (P.edges p);
  Buffer.add_char b '#';
  Buffer.add_string b (string_of_int sc.master);
  Buffer.add_char b '@';
  Buffer.add_string b (R.to_string sc.phase);
  Buffer.add_char b 'x';
  Buffer.add_string b (string_of_int sc.phases);
  let dump_traces tag l =
    Buffer.add_char b '#';
    Buffer.add_string b tag;
    List.iter
      (fun (i, tr) ->
        Buffer.add_string b (string_of_int i);
        Buffer.add_char b ':';
        List.iter
          (fun (t, mlt) ->
            Buffer.add_string b (R.to_string t);
            Buffer.add_char b ',';
            Buffer.add_string b (R.to_string mlt);
            Buffer.add_char b ';')
          (normalize_trace tr);
        Buffer.add_char b '|')
      l
  in
  dump_traces "cpu" sc.cpu_traces;
  dump_traces "bw" sc.bw_traces;
  Buffer.add_char b '#';
  Buffer.add_string b (if reuse then "w" else "c");
  Buffer.contents b

(* internal checkpoint context threaded through [run_robust] *)
type ckpt_ctx = {
  ck_store : Solve_store.t;
  ck_key : string;
  ck_every : int;
  ck_halt : int option; (* test hook: crash at this boundary *)
  ck_replay : (decision array * snapshot * string option) option;
}

exception Resume_mismatch

let run_robust ?cache ?(reuse = true) ?budget ?stats ?ckpt sc =
  let p = sc.platform in
  let n = P.num_nodes p and m = P.num_edges p in
  let node_cts, edge_cts = compile_scenario sc in
  let sim =
    Event_sim.create
      ~cpu_traces:
        (List.map (fun (i, tr) -> (i, normalize_trace tr)) sc.cpu_traces)
      ~bw_traces:
        (List.map (fun (e, tr) -> (e, normalize_trace tr)) sc.bw_traces)
      p
  in
  let cache = make_cache cache reuse in
  let warm = if reuse then Some (Lp.Warm.create ()) else None in
  (* the surviving subplatforms of consecutive epochs are usually
     near-identical, so the flow cycle-cancellation replays too *)
  let recon = if reuse then Some (Reconstruct.Warm.create ()) else None in
  (* Failure state.  Zero-crossing breakpoints fire simulator outage
     events, and breakpoint timers sort before the phase-boundary timers
     registered below, so at every boundary these arrays are current.
     Traces that start dead fire no event — hence the initialisation. *)
  let dead_cpu =
    Array.init n (fun i -> R.is_zero (compiled_at node_cts.(i) R.zero))
  in
  let dead_bw =
    Array.init m (fun e -> R.is_zero (compiled_at edge_cts.(e) R.zero))
  in
  Event_sim.on_outage sim (fun _ out ->
      match out.Event_sim.out_subject with
      | Event_sim.Cpu_of i ->
        dead_cpu.(i) <- R.is_zero out.Event_sim.out_multiplier
      | Event_sim.Bw_of e ->
        dead_bw.(e) <- R.is_zero out.Event_sim.out_multiplier);
  let node_fc = Array.init n (fun _ -> Forecast.create ()) in
  let edge_fc = Array.init m (fun _ -> Forecast.create ()) in
  (* in-flight task files (op id -> remaining path starting at the hop
     currently on the wire, attempt count) and the retry backlog of
     task files waiting for a surviving route *)
  let live = Hashtbl.create 32 in
  let backlog = ref [] in
  let timed_out = ref 0 and boundary_cancelled = ref 0 in
  let retries = ref 0 and lost = ref 0 and degraded = ref 0 in
  let max_attempts = 4 in
  let horizon = R.mul (R.of_int sc.phases) sc.phase in
  (* a route is now a whole master-rooted path; it is usable for a
     (re)send when every link is alive and the terminal CPU computes *)
  let path_links_alive path = List.for_all (fun e -> not dead_bw.(e)) path in
  let path_dst path =
    match List.rev path with
    | e :: _ -> P.edge_dst p e
    | [] -> invalid_arg "Dynamic_sched: empty path"
  in
  (* routes of the current phase's plan, consulted by mid-phase backoff
     retries; the cursor keeps re-routing round-robin across them *)
  let routes = ref [||] in
  let route_rr = ref 0 in
  let pick_route () =
    let q = !routes in
    let len = Array.length q in
    let rec scan k =
      if k >= len then None
      else
        let path = q.((!route_rr + k) mod len) in
        if path_links_alive path && not dead_cpu.(path_dst path) then begin
          route_rr := (!route_rr + k + 1) mod len;
          Some path
        end
        else scan (k + 1)
    in
    scan 0
  in
  let note_retry backoff =
    incr retries;
    match stats with Some s -> Lp.Stats.add_retry s ~backoff | None -> ()
  in
  let backoff_base = R.div sc.phase (R.of_int 4) in
  (* Store-and-forward delivery along a path: each hop is its own
     tracked operation, submitted when the previous hop lands; the
     terminal arrival enables one unit of computation.  A cancellation
     anywhere along the path abandons the partial progress and resends
     the whole file from the master on a route picked at retry time —
     the copy parked at the intermediate node is simply dropped (task
     files are replicable data, never unique state). *)
  let rec submit_path sim path attempts =
    match path with
    | [] -> ()
    | e :: rest ->
      let idr = ref None in
      (* callbacks only fire from the event loop, after [idr] is set *)
      let unregister () =
        match !idr with None -> () | Some id -> Hashtbl.remove live id
      in
      (* No per-op timeout: cancelling a transfer discards its partial
         progress, and a transfer that is merely slow (or deeply queued
         behind the static supply floor) will finish — recycling it is
         the one way a "robust" executor falls behind the static one,
         which never cancels anything.  Genuine stalls are multiplier-0
         links, and those the boundary sweep detects and cancels
         eagerly through the outage events. *)
      let id =
        Event_sim.submit_op sim
          (Event_sim.Transfer (e, R.one))
          ~on_done:(fun sim ->
            unregister ();
            match rest with
            | [] ->
              Event_sim.submit sim (Event_sim.Compute (P.edge_dst p e, R.one))
            | _ -> submit_path sim rest attempts)
          ~on_cancel:(fun sim reason ->
            unregister ();
            (match reason with
            | Event_sim.Timed_out -> incr timed_out
            | Event_sim.Cancelled | Event_sim.Stranded ->
              incr boundary_cancelled);
            (* retry with exponential backoff and a per-transfer deadline:
               attempt [a] waits [phase/4 * 2^(a-1)] before resubmitting on
               a route alive at fire time (no such route: the task file
               waits in the backlog for the next boundary).  A retry whose
               backoff lands at or past the horizon is abandoned — it could
               never deliver in time anyway.  Every cancellation thus ends
               in exactly one of {retry, lost, backlog}, which is the
               accounting identity [timed_out + cancelled = retries +
               lost_tasks] the chaos harness asserts. *)
            let attempts = attempts + 1 in
            if attempts >= max_attempts then incr lost
            else
              let delay =
                R.mul backoff_base (R.of_int (1 lsl (attempts - 1)))
              in
              let due = R.add (Event_sim.now sim) delay in
              if R.compare due horizon >= 0 then incr lost
              else
                Event_sim.at sim due (fun sim ->
                    match pick_route () with
                    | Some path' ->
                      note_retry delay;
                      submit_path sim path' attempts
                    | None -> backlog := attempts :: !backlog))
      in
      idr := Some id;
      Hashtbl.replace live id (e :: rest, attempts)
  in
  (* The static baseline plan doubles as a supply floor: on every route
     that survives (link alive, destination CPU alive) Robust submits at
     least as many task files per phase as Static would.  Re-planning on
     the surviving subplatform then only ever *adds* supply (and prunes
     the routes Static wastes the master's port on), so Robust dominates
     Static structurally instead of depending on forecast quality —
     forecast-lagged floors supplying less than the static queue was the
     one regime where a fault-free Robust run fell behind.  Physics
     still caps the executed work at the per-epoch LP bound: extra
     submissions merely queue. *)
  let static_sol =
    Master_slave.solve ?warm ?cache ?recon ?budget ?stats p ~master:sc.master
  in
  (* Resuming: overwrite the warm slot with the checkpointed basis only
     *after* the static solve — the uninterrupted run's static solve ran
     against an empty slot, and the first live epoch must import exactly
     the basis the last pre-crash solve left behind. *)
  (match ckpt, warm with
  | Some { ck_replay = Some (_, _, Some bstr); _ }, Some w -> (
    match Lp.import_basis bstr with
    | Some bs -> Lp.Warm.restore w bs
    | None -> () (* damaged basis: first live solve just starts cold *))
  | _ -> ());
  let static_transfers, static_master = phase_plan static_sol sc.phase in
  (* Static-floor supply owed on routes that were dead when the floor
     would have submitted.  Static keeps queueing through an outage and
     its queued transfers flow the moment the link recovers, so flooring
     only the currently-alive routes loses exactly the recovery
     scenarios (patience beats re-planning there).  The arrears are kept
     as per-boundary batches and replayed oldest-first (round-robin
     within each batch) the moment their links are back — which is the
     submission order of Static's own backed-up queue, so the catch-up
     traffic crosses the one-port bottleneck in the same order Static's
     would, restoring [Robust >= Static] under churn with recovery. *)
  let arrears = ref [] in
  let master_deficit = ref 0 in
  (* Cross-epoch reuse under churn.  [prev_restr] remembers the index
     space the warm slots currently live in (the full platform right
     after the static solve — an identity restriction); whenever the
     surviving subplatform changes shape, the reconstruction slot is
     rewritten through {!Platform.transfer_maps} so epoch [k]'s
     cancellation log, matchings and delay vector seed epoch [k+1] —
     including re-expansion when a resource recovers.  The LP basis
     needs no explicit step: {!Lp.remap_basis} fires inside [solve] on
     the signature mismatch.  [memo] short-circuits the restriction
     itself: consecutive epochs with identical multiplier snapshots
     reuse the previous sub-platform outright (same physical value, so
     downstream caches hit too). *)
  let prev_restr = ref (Some (P.identity_restriction p)) in
  let memo = ref None in
  let node_mults = Array.make n R.one in
  let edge_mults = Array.make m R.one in
  let marks = ref [] in
  (* ---- checkpoint plumbing ----
     [replay] is the decision prefix of a resumed run: boundaries
     [0 .. resume_epoch-1] re-execute the logged decisions through the
     simulator (deterministic, no LP work), boundary [resume_epoch]
     validates the rebuilt state against the stored snapshot, and
     everything from there runs live.  A fresh run has
     [resume_epoch = 0] and every boundary is live. *)
  let replay =
    match ckpt with
    | Some { ck_replay = Some (log, snap, _); _ } -> Some (log, snap)
    | _ -> None
  in
  let resume_epoch =
    match replay with Some (log, _) -> Array.length log | None -> 0
  in
  let dlog = ref [] in
  (* newest first; length = boundaries processed so far *)
  let snapshot () =
    {
      s_arrears = !arrears;
      s_backlog = !backlog;
      s_master_deficit = !master_deficit;
      s_timed_out = !timed_out;
      s_cancelled = !boundary_cancelled;
      s_retries = !retries;
      s_lost = !lost;
      s_degraded = !degraded;
      s_dead_cpu = Array.copy dead_cpu;
      s_dead_bw = Array.copy dead_bw;
      s_marks = !marks;
    }
  in
  let snapshots_equal a b =
    a.s_arrears = b.s_arrears
    && a.s_backlog = b.s_backlog
    && a.s_master_deficit = b.s_master_deficit
    && a.s_timed_out = b.s_timed_out
    && a.s_cancelled = b.s_cancelled
    && a.s_retries = b.s_retries
    && a.s_lost = b.s_lost
    && a.s_degraded = b.s_degraded
    && a.s_dead_cpu = b.s_dead_cpu
    && a.s_dead_bw = b.s_dead_bw
    && List.length a.s_marks = List.length b.s_marks
    && List.for_all2 R.equal a.s_marks b.s_marks
  in
  let write_ckpt k =
    match ckpt with
    | Some c when k > 0 && k mod c.ck_every = 0 ->
      let basis =
        match warm with
        | Some w -> Option.map Lp.export_basis (Lp.Warm.basis w)
        | None -> None
      in
      Solve_store.add c.ck_store c.ck_key
        (encode_ckpt
           {
             c_epoch = k;
             c_reuse = reuse;
             c_log = List.rev !dlog;
             c_snap = snapshot ();
             c_basis = basis;
           })
    | _ -> ()
  in
  let halt_check k =
    match ckpt with
    | Some { ck_halt = Some h; _ } when h = k -> raise (Checkpoint.Halted k)
    | _ -> ()
  in
  for k = 0 to sc.phases - 1 do
    let t0 = R.mul (R.of_int k) sc.phase in
    Event_sim.at sim t0 (fun sim ->
        (* resume point: the stored snapshot was taken exactly here, at
           the start of this boundary's callback *)
        (match replay with
        | Some (_, snap) when k = resume_epoch ->
          if not (snapshots_equal (snapshot ()) snap) then
            raise Resume_mismatch
        | _ -> ());
        if k >= resume_epoch then begin
          write_ckpt k;
          halt_check k
        end;
        marks := total_work sim p :: !marks;
        (* detection-driven cancellation: a task file whose current hop
           sits on a link now known dead is going nowhere — free the
           one-port slots it holds (or its queue position) and re-queue
           the task file *)
        Hashtbl.fold
          (fun id (path, _) acc ->
            match path with
            | e :: _ when dead_bw.(e) -> id :: acc
            | _ -> acc)
          live []
        |> List.iter (fun id -> ignore (Event_sim.cancel sim id));
        (* observations of resources that are actually alive feed the
           forecasters during replay and live planning alike — the first
           live epoch's predictions depend on the whole history *)
        List.iter
          (fun i ->
            if not dead_cpu.(i) then
              Forecast.observe node_fc.(i) (compiled_at node_cts.(i) t0))
          (P.nodes p);
        List.iter
          (fun e ->
            if not dead_bw.(e) then
              Forecast.observe edge_fc.(e) (compiled_at edge_cts.(e) t0))
          (P.edges p);
        (* route arrears accrue per branch below (a dead destination CPU
           does NOT block the floor — delivering to a reachable node
           whose CPU is down pre-positions the task files, which compute
           queues and runs at recovery, exactly what Static does through
           the then-idle port); the master's own floor only stalls on a
           dead master CPU *)
        if dead_cpu.(sc.master) then
          master_deficit := !master_deficit + static_master;
        let decision =
          match replay with
          | Some (log, _) when k < resume_epoch -> log.(k)
          | _ ->
            (* live planning: plan on the surviving subplatform, scaled
               by the forecasts *)
            for i = 0 to n - 1 do
              node_mults.(i) <-
                (if dead_cpu.(i) then R.zero else Forecast.predict node_fc.(i))
            done;
            for e = 0 to m - 1 do
              edge_mults.(e) <-
                (if dead_bw.(e) then R.zero else Forecast.predict edge_fc.(e))
            done;
            let restr =
              match !memo with
              | Some (nm, em, r)
                when reuse && mults_equal nm node_mults
                     && mults_equal em edge_mults ->
                r
              | _ ->
                let r =
                  surviving_scaled sc
                    ~node_mult:(fun i -> node_mults.(i))
                    ~edge_mult:(fun e -> edge_mults.(e))
                in
                if reuse then
                  memo :=
                    Some (Array.copy node_mults, Array.copy edge_mults, r);
                r
            in
            (if reuse then
               match !prev_restr with
               | Some prev when prev != restr ->
                 (match recon with
                 | Some w ->
                   let node_map, edge_map =
                     P.transfer_maps ~src:prev ~dst:restr
                   in
                   Reconstruct.Warm.remap w ~node_map ~edge_map
                     ~platform:restr.P.sub
                 | None -> ())
               | _ -> ());
            prev_restr := Some restr;
            let sub = restr.P.sub in
            let plan =
              if not (has_compute sub) then None
              else
                match
                  Master_slave.try_solve ?warm ?cache ?recon ?budget ?stats
                    sub
                    ~master:restr.P.sub_of_node.(sc.master)
                with
                | Error (`Infeasible | `Unbounded) -> None
                | Ok sol -> Some sol
            in
            (match plan with
            | None -> D_degraded
            | Some sol ->
              let transfers, master_tasks_raw = phase_plan sol sc.phase in
              (* plan indices live on the restriction; record (and
                 execute) in original platform indices *)
              let transfers =
                List.map
                  (fun (path, cnt) ->
                    (List.map (fun se -> restr.P.edge_of_sub.(se)) path, cnt))
                  transfers
              in
              D_plan (transfers, master_tasks_raw))
        in
        dlog := decision :: !dlog;
        match decision with
        | D_degraded ->
          (* graceful degradation: no surviving compute power (e.g. the
             master is isolated) — nothing submitted, nothing raised;
             backlogged task files wait for the next boundary.  The whole
             static batch goes into arrears: even its link-alive routes
             got no floor this boundary. *)
          if static_transfers <> [] then
            arrears := !arrears @ [ static_transfers ];
          routes := [||];
          route_rr := 0;
          incr degraded
        | D_plan (transfers, master_tasks_raw) ->
          (* apply the static supply floor on every route whose links
             all still deliver (dead destination CPUs queue the work).
             Supply is layered to mirror Static's own port queue:
             payable arrears batches (oldest first), then this
             boundary's floor batch, then the LP extras — so the
             opportunistic extras never displace through the one-port
             queue the deliveries Static would have made. *)
          let static_alive =
            List.filter
              (fun (path, _) -> path_links_alive path)
              static_transfers
          in
          let owed =
            List.filter
              (fun (path, _) -> not (path_links_alive path))
              static_transfers
          in
          let payable, retained =
            List.fold_left
              (fun (pay, keep) batch ->
                let alive, still_dead =
                  List.partition
                    (fun (path, _) -> path_links_alive path)
                    batch
                in
                ( (if alive <> [] then alive :: pay else pay),
                  if still_dead <> [] then still_dead :: keep else keep ))
              ([], []) !arrears
          in
          let payable = List.rev payable in
          arrears :=
            List.rev retained @ (if owed <> [] then [ owed ] else []);
          (* LP extras beyond the floor on each route (paths compare
             structurally — a route is its exact edge sequence) *)
          let extras =
            List.filter_map
              (fun (path, cnt) ->
                let f =
                  match List.assoc_opt path static_alive with
                  | Some c -> c
                  | None -> 0
                in
                if cnt > f then Some (path, cnt - f) else None)
              transfers
          in
          let master_tasks =
            if dead_cpu.(sc.master) then master_tasks_raw
            else begin
              let t = max master_tasks_raw static_master + !master_deficit in
              master_deficit := 0;
              t
            end
          in
          let retry_items = !backlog in
          backlog := [];
          (* retry routes: the LP's routes plus the floored ones *)
          let route_paths =
            List.map fst transfers
            @ List.filter_map
                (fun (path, _) ->
                  if List.mem_assoc path transfers then None else Some path)
                static_alive
          in
          routes := Array.of_list route_paths;
          route_rr := 0;
          (* each batch is submitted round-robin across its routes —
             the same interleaving Static's own per-phase loop uses *)
          let submit_batch batch =
            let q = Array.of_list batch in
            let counts = Array.map snd q in
            let remaining = ref (Array.fold_left ( + ) 0 counts) in
            while !remaining > 0 do
              Array.iteri
                (fun idx (path, _) ->
                  if counts.(idx) > 0 then begin
                    counts.(idx) <- counts.(idx) - 1;
                    decr remaining;
                    submit_path sim path 0
                  end)
                q
            done
          in
          List.iter submit_batch payable;
          submit_batch static_alive;
          submit_batch extras;
          (* re-route the backlog round-robin over this phase's routes;
             with no route it waits for the next boundary *)
          let nroutes = Array.length !routes in
          if nroutes = 0 then backlog := retry_items
          else
            List.iteri
              (fun j a ->
                let path = !routes.(j mod nroutes) in
                note_retry R.zero;
                submit_path sim path a)
              retry_items;
          (* unit granularity so a partial phase still counts *)
          for _ = 1 to master_tasks do
            Event_sim.submit sim (Event_sim.Compute (sc.master, R.one))
          done)
  done;
  Event_sim.run_until sim horizon;
  let completed = total_work sim p in
  let reachable =
    P.reachable_via p ~alive:(fun e -> not dead_bw.(e)) sc.master
  in
  let dead_nodes = ref 0 and dead_edges = ref 0 in
  for i = 0 to n - 1 do
    if dead_cpu.(i) || not reachable.(i) then incr dead_nodes
  done;
  for e = 0 to m - 1 do
    if dead_bw.(e) then incr dead_edges
  done;
  {
    strategy = Robust;
    completed;
    per_phase = per_phase_of !marks completed;
    losses =
      {
        timed_out_transfers = !timed_out;
        cancelled_transfers = !boundary_cancelled;
        retries = !retries;
        lost_tasks = !lost + List.length !backlog;
        degraded_phases = !degraded;
        dead_nodes = !dead_nodes;
        dead_edges = !dead_edges;
      };
  }

(* fresh checkpoint context for a (re)started run; with [reuse] the LP
   cache gets the store as its disk tier, so a later resumed run finds
   every solve the original run performed and reproduces its results
   bit-identically even where the original hit its in-memory memo *)
let ckpt_ctx_of config ~reuse ~halt_at =
  if config.Checkpoint.every < 1 then
    invalid_arg "Dynamic_sched: checkpoint cadence must be >= 1";
  let store = Solve_store.open_store config.Checkpoint.dir in
  let ctx =
    {
      ck_store = store;
      ck_key = "";
      ck_every = config.Checkpoint.every;
      ck_halt = halt_at;
      ck_replay = None;
    }
  in
  let cache = if reuse then Some (Lp.Cache.create ~disk:store ()) else None in
  (store, ctx, cache)

let run ?cache ?reuse ?budget ?stats ?checkpoint ?halt_at sc strategy =
  (match checkpoint, strategy with
  | Some _, (Static | Reactive | Oracle) ->
    invalid_arg "Dynamic_sched.run: ?checkpoint requires the Robust strategy"
  | _ -> ());
  (match halt_at, checkpoint with
  | Some _, None ->
    invalid_arg "Dynamic_sched.run: ?halt_at requires ?checkpoint"
  | _ -> ());
  match strategy with
  | Robust -> (
    validate_scenario ~allow_outages:true sc;
    match checkpoint with
    | None -> run_robust ?cache ?reuse ?budget ?stats sc
    | Some config ->
      (match cache with
      | Some _ ->
        invalid_arg
          "Dynamic_sched.run: ?cache and ?checkpoint are exclusive (the \
           checkpointed run manages its own disk-tier cache)"
      | None -> ());
      let reuse_v = Option.value reuse ~default:true in
      let _store, ctx, cache = ckpt_ctx_of config ~reuse:reuse_v ~halt_at in
      let ctx = { ctx with ck_key = scenario_key sc ~reuse:reuse_v } in
      run_robust ?cache ?reuse ?budget ?stats ~ckpt:ctx sc)
  | Static ->
    (* outages are execution-time events the static plan never consults:
       the strategy runs (and suffers) fault scenarios as the baseline *)
    validate_scenario ~allow_outages:true sc;
    run_classic ?cache ?reuse ?budget ?stats sc strategy
  | Reactive | Oracle ->
    (* these plan by dividing weights by observed/true multipliers, so a
       zero multiplier has no meaningful scaled platform *)
    validate_scenario sc;
    run_classic ?cache ?reuse ?budget ?stats sc strategy

let outcomes_equal a b =
  a.strategy = b.strategy
  && R.equal a.completed b.completed
  && List.length a.per_phase = List.length b.per_phase
  && List.for_all2 R.equal a.per_phase b.per_phase
  && a.losses = b.losses

let resume ?reuse ?budget ?stats ?(strict = false) ~checkpoint sc =
  validate_scenario ~allow_outages:true sc;
  let reuse_v = Option.value reuse ~default:true in
  let store, ctx, cache = ckpt_ctx_of checkpoint ~reuse:reuse_v ~halt_at:None in
  let key = scenario_key sc ~reuse:reuse_v in
  let ctx = { ctx with ck_key = key } in
  let n = P.num_nodes sc.platform and m = P.num_edges sc.platform in
  (* a missing, corrupt, version-skewed or wrong-flag record never
     raises and never changes an answer: it is quarantined (preserved
     for inspection, out of the live path) and the run cold-starts *)
  let record =
    match Solve_store.find store key with
    | None -> None
    | Some raw -> (
      match decode_ckpt ~nodes:n ~edges:m ~phases:sc.phases raw with
      | Some r when r.c_reuse = reuse_v -> Some r
      | _ ->
        Solve_store.quarantine store key;
        None)
  in
  let cold () =
    (run_robust ?cache ?reuse ?budget ?stats ~ckpt:ctx sc, None)
  in
  let outcome, resumed_from =
    match record with
    | None -> cold ()
    | Some r -> (
      let rctx =
        {
          ctx with
          ck_replay = Some (Array.of_list r.c_log, r.c_snap, r.c_basis);
        }
      in
      match run_robust ?cache ?reuse ?budget ?stats ~ckpt:rctx sc with
      | o -> (o, Some r.c_epoch)
      | exception Resume_mismatch ->
        (* the replayed prefix does not reproduce the stored snapshot:
           the record lied (bit rot that survived the structural decode,
           or a foreign record under a colliding key) — demote it and
           certify the answer by running cold *)
        Solve_store.quarantine store key;
        cold ())
  in
  if strict then begin
    (* certification: an uninterrupted cold-state run (fresh caches, no
       checkpoint machinery) must reproduce the resumed outcome
       bit-identically *)
    let fresh = run_robust ?reuse ?budget sc in
    if not (outcomes_equal outcome fresh) then
      failwith
        "Dynamic_sched.resume: strict certification failed (resumed outcome \
         differs from an uninterrupted cold run)"
  end;
  (outcome, resumed_from)

let oracle_throughput_bound ?cache ?(reuse = true) sc =
  validate_scenario sc;
  let node_cts, edge_cts = compile_scenario sc in
  let cache = make_cache cache reuse in
  let warm = if reuse then Some (Lp.Warm.create ()) else None in
  let recon = if reuse then Some (Reconstruct.Warm.create ()) else None in
  let total = ref R.zero in
  for k = 0 to sc.phases - 1 do
    let t0 = R.mul (R.of_int k) sc.phase in
    let sol =
      Master_slave.solve ?warm ?cache ?recon
        (scaled_platform sc
           (fun i -> compiled_at node_cts.(i) t0)
           (fun e -> compiled_at edge_cts.(e) t0))
        ~master:sc.master
    in
    total := R.add !total (R.mul sc.phase sol.Master_slave.ntask)
  done;
  !total

let fault_throughput_bound ?cache ?(reuse = true) sc =
  validate_scenario ~allow_outages:true sc;
  let node_cts, edge_cts = compile_scenario sc in
  let cache = make_cache cache reuse in
  let warm = if reuse then Some (Lp.Warm.create ()) else None in
  let recon = if reuse then Some (Reconstruct.Warm.create ()) else None in
  let total = ref R.zero in
  for k = 0 to sc.phases - 1 do
    let t0 = R.mul (R.of_int k) sc.phase in
    let restr =
      surviving_scaled sc
        ~node_mult:(fun i -> compiled_at node_cts.(i) t0)
        ~edge_mult:(fun e -> compiled_at edge_cts.(e) t0)
    in
    let sub = restr.P.sub in
    if has_compute sub then begin
      match
        Master_slave.try_solve ?warm ?cache ?recon sub
          ~master:restr.P.sub_of_node.(sc.master)
      with
      | Ok sol -> total := R.add !total (R.mul sc.phase sol.Master_slave.ntask)
      | Error (`Infeasible | `Unbounded) -> ()
    end
    (* a fully degraded epoch (master isolated, no compute) contributes 0 *)
  done;
  !total
