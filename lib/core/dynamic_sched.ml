module R = Rat
module P = Platform

type strategy = Static | Reactive | Oracle | Robust

type scenario = {
  platform : P.t;
  master : P.node;
  cpu_traces : (P.node * Event_sim.trace) list;
  bw_traces : (P.edge * Event_sim.trace) list;
  phase : R.t;
  phases : int;
}

let validate_scenario ?(allow_outages = false) sc =
  if R.sign sc.phase <= 0 then
    invalid_arg "Dynamic_sched: non-positive phase length";
  if sc.phases <= 0 then invalid_arg "Dynamic_sched: no phases";
  let check (_, tr) =
    List.iter
      (fun (_, m) ->
        if R.sign m < 0 then
          invalid_arg "Dynamic_sched: negative multiplier";
        if (not allow_outages) && R.is_zero m then
          invalid_arg "Dynamic_sched: multipliers must stay positive")
      tr
  in
  List.iter check sc.cpu_traces;
  List.iter
    (fun (e, tr) -> check (e, tr))
    sc.bw_traces

(* Traces are compiled once per run into breakpoint-sorted arrays and
   queried by binary search — [plan_for] asks for every node and every
   edge at every phase boundary, so the per-query cost matters.  Sorting
   also fixes a semantic trap: folding over the raw list makes the
   *textually last* matching entry win, so an out-of-order trace
   silently answers with the wrong segment.  Here the breakpoint with
   the largest time <= t wins, whatever the list order; among equal
   times the last entry wins (the sorted-input behaviour of the old
   fold). *)
type compiled = { bp_times : R.t array; bp_mults : R.t array }

let empty_compiled = { bp_times = [||]; bp_mults = [||] }

let compile_trace tr =
  let sorted = List.stable_sort (fun (t1, _) (t2, _) -> R.compare t1 t2) tr in
  let rec dedup = function
    | (t1, _) :: ((t2, _) :: _ as rest) when R.equal t1 t2 -> dedup rest
    | x :: rest -> x :: dedup rest
    | [] -> []
  in
  let l = dedup sorted in
  {
    bp_times = Array.of_list (List.map fst l);
    bp_mults = Array.of_list (List.map snd l);
  }

(* rightmost breakpoint <= time; implicit multiplier 1 before the first *)
let compiled_at ct time =
  let lo = ref 0 and hi = ref (Array.length ct.bp_times) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if R.compare ct.bp_times.(mid) time <= 0 then lo := mid + 1 else hi := mid
  done;
  if !lo = 0 then R.one else ct.bp_mults.(!lo - 1)

let multiplier_at trace time = compiled_at (compile_trace trace) time

(* sorted/deduplicated assoc form, for handing to the simulator *)
let normalize_trace tr =
  let ct = compile_trace tr in
  Array.to_list (Array.map2 (fun t m -> (t, m)) ct.bp_times ct.bp_mults)

(* per-node / per-edge compiled traces; first assoc entry wins, like
   [List.assoc_opt] did *)
let compile_scenario sc =
  let p = sc.platform in
  let node_cts = Array.make (P.num_nodes p) empty_compiled in
  let edge_cts = Array.make (P.num_edges p) empty_compiled in
  List.iter
    (fun (i, tr) -> node_cts.(i) <- compile_trace tr)
    (List.rev sc.cpu_traces);
  List.iter
    (fun (e, tr) -> edge_cts.(e) <- compile_trace tr)
    (List.rev sc.bw_traces);
  (node_cts, edge_cts)

(* platform scaled by per-node / per-edge multipliers: a multiplier m
   divides the time per unit, i.e. w' = w/m and c' = c/m *)
let scaled_platform sc node_mult edge_mult =
  let p = sc.platform in
  P.create
    ~names:(Array.of_list (List.map (P.name p) (P.nodes p)))
    ~weights:
      (Array.of_list
         (List.map
            (fun i ->
              match P.weight p i with
              | Ext_rat.Inf -> Ext_rat.Inf
              | Ext_rat.Fin w -> Ext_rat.Fin (R.div w (node_mult i)))
            (P.nodes p)))
    ~edges:
      (List.map
         (fun e ->
           ( P.edge_src p e,
             P.edge_dst p e,
             R.div (P.edge_cost p e) (edge_mult e) ))
         (P.edges p))

(* plan for one phase, at single-task granularity so that a slave only
   computes what has actually been delivered (a stalled link therefore
   stalls the dependent computation, as it would in reality):
   - per master out-edge: an integral number of unit task files;
   - master's own work: an integral number of unit tasks.
   Edge indices carry over because scaled_platform preserves edge
   order. *)
let phase_plan sol phase =
  let p = sol.Master_slave.platform in
  let transfers =
    List.filter_map
      (fun e ->
        let items = R.floor (R.mul phase sol.Master_slave.task_flow.(e)) in
        let items = R.of_bigint items in
        if R.sign items > 0 then Some (e, R.to_int_exn items) else None)
      (P.edges p)
  in
  let master_tasks =
    let i = sol.Master_slave.master in
    R.to_int_exn
      (R.of_bigint
         (R.floor
            (R.mul phase
               (R.mul sol.Master_slave.alpha.(i) (P.speed p i)))))
  in
  (transfers, master_tasks)

type loss_report = {
  timed_out_transfers : int;
  cancelled_transfers : int;
  retries : int;
  lost_tasks : int;
  degraded_phases : int;
  dead_nodes : int;
  dead_edges : int;
}

let no_losses =
  {
    timed_out_transfers = 0;
    cancelled_transfers = 0;
    retries = 0;
    lost_tasks = 0;
    degraded_phases = 0;
    dead_nodes = 0;
    dead_edges = 0;
  }

type outcome = {
  strategy : strategy;
  completed : R.t;
  per_phase : R.t list;
  losses : loss_report;
}

let total_work sim p =
  R.sum (List.map (fun i -> Event_sim.completed_work sim i) (P.nodes p))

(* Surviving subplatform: what the master still reaches over links with a
   positive multiplier, scaled by the given multipliers; a surviving node
   whose CPU multiplier is zero keeps relaying but cannot compute
   (weight +oo).  A non-positive multiplier marks the resource dead. *)
let surviving_scaled sc ~node_mult ~edge_mult =
  let p = sc.platform in
  let dead_bw e = R.sign (edge_mult e) <= 0 in
  let dead_cpu i = R.sign (node_mult i) <= 0 in
  let reachable =
    P.reachable_via p ~alive:(fun e -> not (dead_bw e)) sc.master
  in
  let scaled =
    scaled_platform sc
      (fun i -> if dead_cpu i then R.one else node_mult i)
      (fun e -> if dead_bw e then R.one else edge_mult e)
  in
  P.restrict scaled
    ~keep_node:(fun i -> reachable.(i))
    ~keep_edge:(fun e -> not (dead_bw e))
    ~weights:(fun i ->
      if dead_cpu i then Ext_rat.Inf else P.weight scaled i)

let surviving_platform sc ~at =
  validate_scenario ~allow_outages:true sc;
  let node_cts, edge_cts = compile_scenario sc in
  surviving_scaled sc
    ~node_mult:(fun i -> compiled_at node_cts.(i) at)
    ~edge_mult:(fun e -> compiled_at edge_cts.(e) at)

let has_compute sub =
  List.exists
    (fun i ->
      match P.weight sub i with Ext_rat.Inf -> false | Ext_rat.Fin _ -> true)
    (P.nodes sub)

(* the data-driven executor below only handles flows that go directly
   from the master to the consuming slave (stars, or graphs whose LP
   solution happens to use only master links) *)
let check_single_hop sol =
  let p = sol.Master_slave.platform in
  Array.iteri
    (fun e f ->
      if R.sign f > 0 && P.edge_src p e <> sol.Master_slave.master then
        invalid_arg
          "Dynamic_sched: task flow uses relays; only master-direct flows \
           are supported by the phase executor")
    sol.Master_slave.task_flow

let make_cache cache reuse =
  match cache with
  | Some _ as c -> c
  | None -> if reuse then Some (Lp.Cache.create ()) else None

let run_classic ?cache ?(reuse = true) ?budget ?stats sc strategy =
  let p = sc.platform in
  let node_cts, edge_cts = compile_scenario sc in
  let sim =
    Event_sim.create
      ~cpu_traces:(List.map (fun (i, tr) -> (i, normalize_trace tr)) sc.cpu_traces)
      ~bw_traces:(List.map (fun (e, tr) -> (e, normalize_trace tr)) sc.bw_traces)
      p
  in
  (* the per-phase re-solves differ only in scaled weights, so the
     previous basis warm-starts the next solve and flat trace segments
     (repeated multipliers) hit the cache outright; [~reuse:false]
     restores the cold per-phase solves for baseline measurements *)
  let cache = make_cache cache reuse in
  let warm = if reuse then Some (Lp.Warm.create ()) else None in
  let recon = if reuse then Some (Reconstruct.Warm.create ()) else None in
  let solve_scaled node_mult edge_mult =
    Master_slave.solve ?warm ?cache ?recon ?budget ?stats
      (scaled_platform sc node_mult edge_mult)
      ~master:sc.master
  in
  let static_sol =
    Master_slave.solve ?warm ?cache ?recon ?budget ?stats p ~master:sc.master
  in
  (* one forecaster per node and per edge (reactive strategy) *)
  let node_fc = Array.init (P.num_nodes p) (fun _ -> Forecast.create ()) in
  let edge_fc = Array.init (P.num_edges p) (fun _ -> Forecast.create ()) in
  let marks = ref [] in
  let plan_for time =
    match strategy with
    | Robust -> assert false (* handled by [run_robust] *)
    | Static -> static_sol
    | Oracle ->
      solve_scaled
        (fun i -> compiled_at node_cts.(i) time)
        (fun e -> compiled_at edge_cts.(e) time)
    | Reactive ->
      (* probe current performance, fold into the forecasters, and plan
         with the prediction *)
      List.iter
        (fun i -> Forecast.observe node_fc.(i) (compiled_at node_cts.(i) time))
        (P.nodes p);
      List.iter
        (fun e -> Forecast.observe edge_fc.(e) (compiled_at edge_cts.(e) time))
        (P.edges p);
      solve_scaled
        (fun i -> Forecast.predict node_fc.(i))
        (fun e -> Forecast.predict edge_fc.(e))
  in
  check_single_hop static_sol;
  for k = 0 to sc.phases - 1 do
    let t0 = R.mul (R.of_int k) sc.phase in
    Event_sim.at sim t0 (fun sim ->
        marks := total_work sim p :: !marks;
        let sol = plan_for t0 in
        check_single_hop sol;
        let transfers, master_tasks = phase_plan sol sc.phase in
        (* round-robin across slaves: unit task files, each enabling one
           unit of computation on arrival *)
        let queues = Array.of_list transfers in
        let remaining = ref (Array.fold_left (fun a (_, n) -> a + n) 0 queues) in
        let counts = Array.map snd queues in
        while !remaining > 0 do
          Array.iteri
            (fun idx (e, _) ->
              if counts.(idx) > 0 then begin
                counts.(idx) <- counts.(idx) - 1;
                decr remaining;
                let dst = P.edge_dst p e in
                Event_sim.submit sim (Event_sim.Transfer (e, R.one))
                  ~on_done:(fun sim ->
                    Event_sim.submit sim (Event_sim.Compute (dst, R.one)))
              end)
            queues
        done;
        if master_tasks > 0 then
          Event_sim.submit sim
            (Event_sim.Compute (sc.master, R.of_int master_tasks)))
  done;
  let horizon = R.mul (R.of_int sc.phases) sc.phase in
  Event_sim.run_until sim horizon;
  let completed = total_work sim p in
  let boundaries = List.rev (completed :: !marks) in
  let per_phase =
    match boundaries with
    | [] -> []
    | first :: rest ->
      let rec diffs prev = function
        | [] -> []
        | x :: xs -> R.sub x prev :: diffs x xs
      in
      diffs first rest
  in
  { strategy; completed; per_phase; losses = no_losses }

(* phase-boundary differences of the cumulative-work marks *)
let per_phase_of marks completed =
  match List.rev (completed :: marks) with
  | [] -> []
  | first :: rest ->
    let rec diffs prev = function
      | [] -> []
      | x :: xs -> R.sub x prev :: diffs x xs
    in
    diffs first rest

(* exact elementwise equality of two multiplier snapshots *)
let mults_equal a b =
  let n = Array.length a in
  let rec go i = i >= n || (R.equal a.(i) b.(i) && go (i + 1)) in
  Array.length b = n && go 0

let run_robust ?cache ?(reuse = true) ?budget ?stats sc =
  let p = sc.platform in
  let n = P.num_nodes p and m = P.num_edges p in
  let node_cts, edge_cts = compile_scenario sc in
  let sim =
    Event_sim.create
      ~cpu_traces:
        (List.map (fun (i, tr) -> (i, normalize_trace tr)) sc.cpu_traces)
      ~bw_traces:
        (List.map (fun (e, tr) -> (e, normalize_trace tr)) sc.bw_traces)
      p
  in
  let cache = make_cache cache reuse in
  let warm = if reuse then Some (Lp.Warm.create ()) else None in
  (* the surviving subplatforms of consecutive epochs are usually
     near-identical, so the flow cycle-cancellation replays too *)
  let recon = if reuse then Some (Reconstruct.Warm.create ()) else None in
  (* Failure state.  Zero-crossing breakpoints fire simulator outage
     events, and breakpoint timers sort before the phase-boundary timers
     registered below, so at every boundary these arrays are current.
     Traces that start dead fire no event — hence the initialisation. *)
  let dead_cpu =
    Array.init n (fun i -> R.is_zero (compiled_at node_cts.(i) R.zero))
  in
  let dead_bw =
    Array.init m (fun e -> R.is_zero (compiled_at edge_cts.(e) R.zero))
  in
  Event_sim.on_outage sim (fun _ out ->
      match out.Event_sim.out_subject with
      | Event_sim.Cpu_of i ->
        dead_cpu.(i) <- R.is_zero out.Event_sim.out_multiplier
      | Event_sim.Bw_of e ->
        dead_bw.(e) <- R.is_zero out.Event_sim.out_multiplier);
  let node_fc = Array.init n (fun _ -> Forecast.create ()) in
  let edge_fc = Array.init m (fun _ -> Forecast.create ()) in
  (* in-flight transfers (op id -> edge, attempt count) and the retry
     backlog of task files waiting for a surviving route *)
  let live = Hashtbl.create 32 in
  let backlog = ref [] in
  let timed_out = ref 0 and boundary_cancelled = ref 0 in
  let retries = ref 0 and lost = ref 0 and degraded = ref 0 in
  let max_attempts = 4 in
  let horizon = R.mul (R.of_int sc.phases) sc.phase in
  (* routes of the current phase's plan, consulted by mid-phase backoff
     retries; the cursor keeps re-routing round-robin across them *)
  let routes = ref [||] in
  let route_rr = ref 0 in
  let pick_route () =
    let q = !routes in
    let len = Array.length q in
    let rec scan k =
      if k >= len then None
      else
        let e = q.((!route_rr + k) mod len) in
        if (not dead_bw.(e)) && not dead_cpu.(P.edge_dst p e) then begin
          route_rr := (!route_rr + k + 1) mod len;
          Some e
        end
        else scan (k + 1)
    in
    scan 0
  in
  let note_retry backoff =
    incr retries;
    match stats with Some s -> Lp.Stats.add_retry s ~backoff | None -> ()
  in
  let backoff_base = R.div sc.phase (R.of_int 4) in
  let rec submit_transfer sim e attempts =
    let dst = P.edge_dst p e in
    let idr = ref None in
    (* callbacks only fire from the event loop, after [idr] is set *)
    let unregister () =
      match !idr with None -> () | Some id -> Hashtbl.remove live id
    in
    (* No per-op timeout: cancelling a transfer discards its partial
       progress, and a transfer that is merely slow (or deeply queued
       behind the static supply floor) will finish — recycling it is
       the one way a "robust" executor falls behind the static one,
       which never cancels anything.  Genuine stalls are multiplier-0
       links, and those the boundary sweep detects and cancels
       eagerly through the outage events. *)
    let id =
      Event_sim.submit_op sim
        (Event_sim.Transfer (e, R.one))
        ~on_done:(fun sim ->
          unregister ();
          Event_sim.submit sim (Event_sim.Compute (dst, R.one)))
        ~on_cancel:(fun sim reason ->
          unregister ();
          (match reason with
          | Event_sim.Timed_out -> incr timed_out
          | Event_sim.Cancelled | Event_sim.Stranded ->
            incr boundary_cancelled);
          (* retry with exponential backoff and a per-transfer deadline:
             attempt [a] waits [phase/4 * 2^(a-1)] before resubmitting on
             a route alive at fire time (no such route: the task file
             waits in the backlog for the next boundary).  A retry whose
             backoff lands at or past the horizon is abandoned — it could
             never deliver in time anyway.  Every cancellation thus ends
             in exactly one of {retry, lost, backlog}, which is the
             accounting identity [timed_out + cancelled = retries +
             lost_tasks] the chaos harness asserts. *)
          let attempts = attempts + 1 in
          if attempts >= max_attempts then incr lost
          else
            let delay =
              R.mul backoff_base (R.of_int (1 lsl (attempts - 1)))
            in
            let due = R.add (Event_sim.now sim) delay in
            if R.compare due horizon >= 0 then incr lost
            else
              Event_sim.at sim due (fun sim ->
                  match pick_route () with
                  | Some e' ->
                    note_retry delay;
                    submit_transfer sim e' attempts
                  | None -> backlog := attempts :: !backlog))
    in
    idr := Some id;
    Hashtbl.replace live id (e, attempts)
  in
  (* The static baseline plan doubles as a supply floor: on every route
     that survives (link alive, destination CPU alive) Robust submits at
     least as many task files per phase as Static would.  Re-planning on
     the surviving subplatform then only ever *adds* supply (and prunes
     the routes Static wastes the master's port on), so Robust dominates
     Static structurally instead of depending on forecast quality —
     forecast-lagged floors supplying less than the static queue was the
     one regime where a fault-free Robust run fell behind.  Physics
     still caps the executed work at the per-epoch LP bound: extra
     submissions merely queue. *)
  let static_sol =
    Master_slave.solve ?warm ?cache ?recon ?budget ?stats p ~master:sc.master
  in
  check_single_hop static_sol;
  let static_transfers, static_master = phase_plan static_sol sc.phase in
  (* Static-floor supply owed on routes that were dead when the floor
     would have submitted.  Static keeps queueing through an outage and
     its queued transfers flow the moment the link recovers, so flooring
     only the currently-alive routes loses exactly the recovery
     scenarios (patience beats re-planning there).  The arrears are kept
     as per-boundary batches and replayed oldest-first (round-robin
     within each batch) the moment their links are back — which is the
     submission order of Static's own backed-up queue, so the catch-up
     traffic crosses the one-port bottleneck in the same order Static's
     would, restoring [Robust >= Static] under churn with recovery. *)
  let arrears = ref [] in
  let master_deficit = ref 0 in
  (* Cross-epoch reuse under churn.  [prev_restr] remembers the index
     space the warm slots currently live in (the full platform right
     after the static solve — an identity restriction); whenever the
     surviving subplatform changes shape, the reconstruction slot is
     rewritten through {!Platform.transfer_maps} so epoch [k]'s
     cancellation log, matchings and delay vector seed epoch [k+1] —
     including re-expansion when a resource recovers.  The LP basis
     needs no explicit step: {!Lp.remap_basis} fires inside [solve] on
     the signature mismatch.  [memo] short-circuits the restriction
     itself: consecutive epochs with identical multiplier snapshots
     reuse the previous sub-platform outright (same physical value, so
     downstream caches hit too). *)
  let prev_restr = ref (Some (P.identity_restriction p)) in
  let memo = ref None in
  let node_mults = Array.make n R.one in
  let edge_mults = Array.make m R.one in
  let marks = ref [] in
  for k = 0 to sc.phases - 1 do
    let t0 = R.mul (R.of_int k) sc.phase in
    Event_sim.at sim t0 (fun sim ->
        marks := total_work sim p :: !marks;
        (* detection-driven cancellation: a transfer sitting on a link
           now known dead is going nowhere — free the one-port slots it
           holds (or its queue position) and re-queue the task file *)
        Hashtbl.fold
          (fun id (e, _) acc -> if dead_bw.(e) then id :: acc else acc)
          live []
        |> List.iter (fun id -> ignore (Event_sim.cancel sim id));
        (* plan on the surviving subplatform, scaled by forecasts fed
           only with observations of resources that are actually alive *)
        List.iter
          (fun i ->
            if not dead_cpu.(i) then
              Forecast.observe node_fc.(i) (compiled_at node_cts.(i) t0))
          (P.nodes p);
        List.iter
          (fun e ->
            if not dead_bw.(e) then
              Forecast.observe edge_fc.(e) (compiled_at edge_cts.(e) t0))
          (P.edges p);
        for i = 0 to n - 1 do
          node_mults.(i) <-
            (if dead_cpu.(i) then R.zero else Forecast.predict node_fc.(i))
        done;
        for e = 0 to m - 1 do
          edge_mults.(e) <-
            (if dead_bw.(e) then R.zero else Forecast.predict edge_fc.(e))
        done;
        (* route arrears accrue per branch below (a dead destination CPU
           does NOT block the floor — delivering to a reachable node
           whose CPU is down pre-positions the task files, which compute
           queues and runs at recovery, exactly what Static does through
           the then-idle port); the master's own floor only stalls on a
           dead master CPU *)
        if dead_cpu.(sc.master) then
          master_deficit := !master_deficit + static_master;
        let restr =
          match !memo with
          | Some (nm, em, r)
            when reuse && mults_equal nm node_mults && mults_equal em edge_mults
            ->
            r
          | _ ->
            let r =
              surviving_scaled sc
                ~node_mult:(fun i -> node_mults.(i))
                ~edge_mult:(fun e -> edge_mults.(e))
            in
            if reuse then
              memo := Some (Array.copy node_mults, Array.copy edge_mults, r);
            r
        in
        (if reuse then
           match !prev_restr with
           | Some prev when prev != restr ->
             (match recon with
             | Some w ->
               let node_map, edge_map = P.transfer_maps ~src:prev ~dst:restr in
               Reconstruct.Warm.remap w ~node_map ~edge_map
                 ~platform:restr.P.sub
             | None -> ())
           | _ -> ());
        prev_restr := Some restr;
        let sub = restr.P.sub in
        let plan =
          if not (has_compute sub) then None
          else
            match
              Master_slave.try_solve ?warm ?cache ?recon ?budget ?stats sub
                ~master:restr.P.sub_of_node.(sc.master)
            with
            | Error (`Infeasible | `Unbounded) -> None
            | Ok sol -> Some sol
        in
        match plan with
        | None ->
          (* graceful degradation: no surviving compute power (e.g. the
             master is isolated) — nothing submitted, nothing raised;
             backlogged task files wait for the next boundary.  The whole
             static batch goes into arrears: even its link-alive routes
             got no floor this boundary. *)
          if static_transfers <> [] then
            arrears := !arrears @ [ static_transfers ];
          routes := [||];
          route_rr := 0;
          incr degraded
        | Some sol ->
          check_single_hop sol;
          let transfers, master_tasks = phase_plan sol sc.phase in
          (* plan indices live on the restriction; execute on the
             original platform *)
          let transfers =
            List.map
              (fun (se, cnt) -> (restr.P.edge_of_sub.(se), cnt))
              transfers
          in
          (* apply the static supply floor on every route whose link
             still delivers (dead destination CPUs queue the work).
             Supply is layered to mirror Static's own port queue:
             payable arrears batches (oldest first), then this
             boundary's floor batch, then the LP extras — so the
             opportunistic extras never displace through the one-port
             queue the deliveries Static would have made. *)
          let static_alive =
            List.filter (fun (e, _) -> not dead_bw.(e)) static_transfers
          in
          let owed =
            List.filter (fun (e, _) -> dead_bw.(e)) static_transfers
          in
          let payable, retained =
            List.fold_left
              (fun (pay, keep) batch ->
                let alive, still_dead =
                  List.partition (fun (e, _) -> not dead_bw.(e)) batch
                in
                ( (if alive <> [] then alive :: pay else pay),
                  if still_dead <> [] then still_dead :: keep else keep ))
              ([], []) !arrears
          in
          let payable = List.rev payable in
          arrears :=
            List.rev retained @ (if owed <> [] then [ owed ] else []);
          (* LP extras beyond the floor on each route *)
          let extras =
            List.filter_map
              (fun (e, cnt) ->
                let f =
                  match List.assoc_opt e static_alive with
                  | Some c -> c
                  | None -> 0
                in
                if cnt > f then Some (e, cnt - f) else None)
              transfers
          in
          let master_tasks =
            if dead_cpu.(sc.master) then master_tasks
            else begin
              let t = max master_tasks static_master + !master_deficit in
              master_deficit := 0;
              t
            end
          in
          let retry_items = !backlog in
          backlog := [];
          (* retry routes: the LP's routes plus the floored ones *)
          let route_edges =
            List.map fst transfers
            @ List.filter_map
                (fun (e, _) ->
                  if List.mem_assoc e transfers then None else Some e)
                static_alive
          in
          routes := Array.of_list route_edges;
          route_rr := 0;
          (* each batch is submitted round-robin across its routes —
             the same interleaving Static's own per-phase loop uses *)
          let submit_batch batch =
            let q = Array.of_list batch in
            let counts = Array.map snd q in
            let remaining = ref (Array.fold_left ( + ) 0 counts) in
            while !remaining > 0 do
              Array.iteri
                (fun idx (e, _) ->
                  if counts.(idx) > 0 then begin
                    counts.(idx) <- counts.(idx) - 1;
                    decr remaining;
                    submit_transfer sim e 0
                  end)
                q
            done
          in
          List.iter submit_batch payable;
          submit_batch static_alive;
          submit_batch extras;
          (* re-route the backlog round-robin over this phase's routes;
             with no route it waits for the next boundary *)
          let nroutes = Array.length !routes in
          if nroutes = 0 then backlog := retry_items
          else
            List.iteri
              (fun j a ->
                let e = !routes.(j mod nroutes) in
                note_retry R.zero;
                submit_transfer sim e a)
              retry_items;
          (* unit granularity so a partial phase still counts *)
          for _ = 1 to master_tasks do
            Event_sim.submit sim (Event_sim.Compute (sc.master, R.one))
          done)
  done;
  Event_sim.run_until sim horizon;
  let completed = total_work sim p in
  let reachable =
    P.reachable_via p ~alive:(fun e -> not dead_bw.(e)) sc.master
  in
  let dead_nodes = ref 0 and dead_edges = ref 0 in
  for i = 0 to n - 1 do
    if dead_cpu.(i) || not reachable.(i) then incr dead_nodes
  done;
  for e = 0 to m - 1 do
    if dead_bw.(e) then incr dead_edges
  done;
  {
    strategy = Robust;
    completed;
    per_phase = per_phase_of !marks completed;
    losses =
      {
        timed_out_transfers = !timed_out;
        cancelled_transfers = !boundary_cancelled;
        retries = !retries;
        lost_tasks = !lost + List.length !backlog;
        degraded_phases = !degraded;
        dead_nodes = !dead_nodes;
        dead_edges = !dead_edges;
      };
  }

let run ?cache ?reuse ?budget ?stats sc strategy =
  match strategy with
  | Robust ->
    validate_scenario ~allow_outages:true sc;
    run_robust ?cache ?reuse ?budget ?stats sc
  | Static ->
    (* outages are execution-time events the static plan never consults:
       the strategy runs (and suffers) fault scenarios as the baseline *)
    validate_scenario ~allow_outages:true sc;
    run_classic ?cache ?reuse ?budget ?stats sc strategy
  | Reactive | Oracle ->
    (* these plan by dividing weights by observed/true multipliers, so a
       zero multiplier has no meaningful scaled platform *)
    validate_scenario sc;
    run_classic ?cache ?reuse ?budget ?stats sc strategy

let oracle_throughput_bound ?cache ?(reuse = true) sc =
  validate_scenario sc;
  let node_cts, edge_cts = compile_scenario sc in
  let cache = make_cache cache reuse in
  let warm = if reuse then Some (Lp.Warm.create ()) else None in
  let recon = if reuse then Some (Reconstruct.Warm.create ()) else None in
  let total = ref R.zero in
  for k = 0 to sc.phases - 1 do
    let t0 = R.mul (R.of_int k) sc.phase in
    let sol =
      Master_slave.solve ?warm ?cache ?recon
        (scaled_platform sc
           (fun i -> compiled_at node_cts.(i) t0)
           (fun e -> compiled_at edge_cts.(e) t0))
        ~master:sc.master
    in
    total := R.add !total (R.mul sc.phase sol.Master_slave.ntask)
  done;
  !total

let fault_throughput_bound ?cache ?(reuse = true) sc =
  validate_scenario ~allow_outages:true sc;
  let node_cts, edge_cts = compile_scenario sc in
  let cache = make_cache cache reuse in
  let warm = if reuse then Some (Lp.Warm.create ()) else None in
  let recon = if reuse then Some (Reconstruct.Warm.create ()) else None in
  let total = ref R.zero in
  for k = 0 to sc.phases - 1 do
    let t0 = R.mul (R.of_int k) sc.phase in
    let restr =
      surviving_scaled sc
        ~node_mult:(fun i -> compiled_at node_cts.(i) t0)
        ~edge_mult:(fun e -> compiled_at edge_cts.(e) t0)
    in
    let sub = restr.P.sub in
    if has_compute sub then begin
      match
        Master_slave.try_solve ?warm ?cache ?recon sub
          ~master:restr.P.sub_of_node.(sc.master)
      with
      | Ok sol -> total := R.add !total (R.mul sc.phase sol.Master_slave.ntask)
      | Error (`Infeasible | `Unbounded) -> ()
    end
    (* a fully degraded epoch (master isolated, no compute) contributes 0 *)
  done;
  !total
