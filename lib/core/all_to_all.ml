module R = Rat
module P = Platform

type solution = {
  platform : P.t;
  participants : P.node list;
  throughput : R.t;
  flows : ((P.node * P.node) * R.t array) list;
}

let validate_spec p ~participants =
  if List.length participants < 2 then
    invalid_arg "All_to_all.solve: need at least two participants";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun i ->
      if i < 0 || i >= P.num_nodes p then
        invalid_arg "All_to_all.solve: participant out of range";
      if Hashtbl.mem seen i then
        invalid_arg "All_to_all.solve: duplicate participant";
      Hashtbl.replace seen i ())
    participants

let pairs_of participants =
  List.concat_map
    (fun s ->
      List.filter_map
        (fun t -> if s = t then None else Some (s, t))
        participants)
    participants

(* The monolithic LP: one commodity per ordered pair. *)
let build_model p ~participants =
  validate_spec p ~participants;
  let pairs = pairs_of participants in
  let m = Lp.create () in
  let tp = Lp.add_var m "TP" in
  let unit_iv = Some R.one in
  let s_v =
    Array.init (P.num_edges p) (fun e ->
        Lp.add_var ~ub:unit_iv m (Printf.sprintf "s_%s" (P.edge_name p e)))
  in
  let f_v =
    List.map
      (fun (s, t) ->
        ( (s, t),
          Array.init (P.num_edges p) (fun e ->
              Lp.add_var m
                (Printf.sprintf "f_%s_%s_%s" (P.name p s) (P.name p t)
                   (P.edge_name p e))) ))
      pairs
  in
  (* sum law: s_e = sum over pairs of f * c *)
  Array.iteri
    (fun e sv ->
      let c = P.edge_cost p e in
      let total = Lp.sum (List.map (fun (_, fv) -> Lp.term c fv.(e)) f_v) in
      Lp.add_constraint m (Lp.sub (Lp.var sv) total) Lp.Eq R.zero)
    s_v;
  (* one-port *)
  List.iter
    (fun i ->
      let outs = P.out_edges p i and ins = P.in_edges p i in
      if outs <> [] then
        Lp.add_constraint m
          (Lp.sum (List.map (fun e -> Lp.var s_v.(e)) outs))
          Lp.Le R.one;
      if ins <> [] then
        Lp.add_constraint m
          (Lp.sum (List.map (fun e -> Lp.var s_v.(e)) ins))
          Lp.Le R.one)
    (P.nodes p);
  (* per commodity: hygiene, conservation, sink *)
  List.iter
    (fun ((s, t), fv) ->
      List.iter
        (fun e -> Lp.add_constraint m (Lp.var fv.(e)) Lp.Eq R.zero)
        (P.in_edges p s);
      List.iter
        (fun e -> Lp.add_constraint m (Lp.var fv.(e)) Lp.Eq R.zero)
        (P.out_edges p t);
      List.iter
        (fun i ->
          if i = s then ()
          else if i = t then begin
            let inflow =
              Lp.sum (List.map (fun e -> Lp.var fv.(e)) (P.in_edges p i))
            in
            Lp.add_constraint m (Lp.sub inflow (Lp.var tp)) Lp.Eq R.zero
          end
          else begin
            let inflow =
              List.map (fun e -> Lp.term R.one fv.(e)) (P.in_edges p i)
            in
            let outflow =
              List.map (fun e -> Lp.term R.minus_one fv.(e)) (P.out_edges p i)
            in
            Lp.add_constraint m (Lp.sum (inflow @ outflow)) Lp.Eq R.zero
          end)
        (P.nodes p))
    f_v;
  Lp.set_objective m Lp.Maximize (Lp.var tp);
  (m, tp, s_v, f_v)

let model_handles = build_model

let solution_of_lp p ~participants f_v (sol : Lp.solution) =
  let flows =
    List.map
      (fun (pair, fv) ->
        (pair, Flow.cancel_cycles p (Array.map sol.Lp.values fv)))
      f_v
  in
  { platform = p; participants; throughput = sol.Lp.objective; flows }

let solve ?rule p ~participants =
  let m, _tp, _s_v, f_v = build_model p ~participants in
  match Lp.solve ?rule m with
  | Lp.Infeasible | Lp.Unbounded ->
    failwith "All_to_all.solve: LP not optimal (cannot happen)"
  | Lp.Optimal sol -> solution_of_lp p ~participants f_v sol

(* --- structurally reduced solve ----------------------------------------

   On a tree, pair (s, t) must cross the link above every subtree that
   separates them, and the tree path is the only way to do it.  With
   inP(v) participants below tree link {u, v} out of nP total, the link
   carries

     m_v = inP(v) * (nP - inP(v))

   commodities in each direction — downward the pairs entering the
   subtree, upward the pairs leaving it.  Any feasible solution has
   s_e >= c_e * m_v * TP on both directed lanes (cut argument per pair,
   reverse flow nonnegative), ports sum their loaded lanes, and routing
   every pair along its tree path at rate TP meets all of it exactly:

     TP = min( 1/(c_e * m_e)            per loaded lane,
               1/sum_out  c_e * m_e     per out-port,
               1/sum_in   c_e * m_e     per in-port )

   If a loaded upward lane does not exist on the platform, some pair
   cannot route at all (the tree link is the only connection between
   the two sides) and the common rate is zero; same when a participant
   is unreachable from the root.  Non-tree platforms fall back to the
   monolithic LP through the Lp.Reduce presolve. *)

let zero_solution p ~participants =
  let ne = P.num_edges p in
  {
    platform = p;
    participants;
    throughput = R.zero;
    flows = List.map (fun pr -> (pr, Array.make ne R.zero)) (pairs_of participants);
  }

let solve_reduced ?rule ?solver ?factorization ?stats p ~participants =
  validate_spec p ~participants;
  let root = List.hd participants in
  match Tree_decomp.detect p ~root with
  | None ->
    let m, _tp, _s_v, f_v = build_model p ~participants in
    let red = Lp.Reduce.reduce m in
    (match Lp.Reduce.solve ?rule ?solver ?factorization ?stats red with
    | Lp.Infeasible | Lp.Unbounded ->
      failwith "All_to_all.solve_reduced: LP not optimal (cannot happen)"
    | Lp.Optimal sol -> solution_of_lp p ~participants f_v sol)
  | Some td ->
    let prt = Array.of_list participants in
    let np = Array.length prt in
    if Array.exists (fun i -> not td.Tree_decomp.reached.(i)) prt then
      zero_solution p ~participants
    else begin
      let n = P.num_nodes p in
      let is_p = Array.make n false in
      Array.iter (fun i -> is_p.(i) <- true) prt;
      let inp =
        Tree_decomp.subtree_sums p td ~seed:(fun v ->
            if is_p.(v) then 1 else 0)
      in
      let mult v = inp.(v) * (np - inp.(v)) in
      let upe = Tree_decomp.up_edges p td in
      if
        Array.exists
          (fun v ->
            td.Tree_decomp.parent_edge.(v) >= 0
            && mult v > 0
            && upe.(v) < 0)
          td.Tree_decomp.order
      then zero_solution p ~participants
      else begin
        (* load contributed by the lane above v in one direction *)
        let lane_load e v = R.mul (P.edge_cost p e) (R.of_int (mult v)) in
        let tp = ref None in
        let consider x =
          match !tp with
          | Some y when R.compare y x <= 0 -> ()
          | _ -> tp := Some x
        in
        let kids = Tree_decomp.children p td in
        Array.iter
          (fun v ->
            let down = td.Tree_decomp.parent_edge.(v) in
            if down >= 0 && mult v > 0 then begin
              consider (R.inv (lane_load down v));
              consider (R.inv (lane_load upe.(v) v))
            end;
            (* ports of v: the lane to the parent plus one per child *)
            let self_out, self_in =
              if down >= 0 && mult v > 0 then
                (lane_load upe.(v) v, lane_load down v)
              else (R.zero, R.zero)
            in
            let out_load, in_load =
              List.fold_left
                (fun (o, i) (e, w) ->
                  if mult w > 0 then
                    (R.add o (lane_load e w), R.add i (lane_load upe.(w) w))
                  else (o, i))
                (self_out, self_in) kids.(v)
            in
            if R.sign out_load > 0 then consider (R.inv out_load);
            if R.sign in_load > 0 then consider (R.inv in_load))
          td.Tree_decomp.order;
        match !tp with
        | None ->
          (* every lane multiplicity is zero: impossible with >= 2
             reached participants *)
          assert false
        | Some tp ->
          let depth = Array.make n 0 in
          Array.iter
            (fun v ->
              let e = td.Tree_decomp.parent_edge.(v) in
              if e >= 0 then depth.(v) <- depth.(P.edge_src p e) + 1)
            td.Tree_decomp.order;
          let ne = P.num_edges p in
          let route s t =
            let arr = Array.make ne R.zero in
            let a = ref s and b = ref t in
            while depth.(!a) > depth.(!b) do
              arr.(upe.(!a)) <- tp;
              a := Tree_decomp.parent p td !a
            done;
            while depth.(!b) > depth.(!a) do
              arr.(td.Tree_decomp.parent_edge.(!b)) <- tp;
              b := Tree_decomp.parent p td !b
            done;
            while !a <> !b do
              arr.(upe.(!a)) <- tp;
              arr.(td.Tree_decomp.parent_edge.(!b)) <- tp;
              a := Tree_decomp.parent p td !a;
              b := Tree_decomp.parent p td !b
            done;
            arr
          in
          let flows =
            List.map (fun (s, t) -> ((s, t), route s t)) (pairs_of participants)
          in
          { platform = p; participants; throughput = tp; flows }
      end
    end

let check_invariants sol =
  let p = sol.platform in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let result = ref (Ok ()) in
  let set_err e = if !result = Ok () then result := e in
  List.iter
    (fun ((s, t), flow) ->
      List.iter
        (fun i ->
          let b = Flow.balance p flow i in
          if i = t then begin
            if not (R.equal b sol.throughput) then
              set_err
                (err "pair %s->%s delivers %s" (P.name p s) (P.name p t)
                   (R.to_string b))
          end
          else if i = s then begin
            if R.sign b > 0 then
              set_err (err "source %s absorbs its own commodity" (P.name p s))
          end
          else if not (R.is_zero b) then
            set_err
              (err "pair %s->%s unbalanced at %s" (P.name p s) (P.name p t)
                 (P.name p i)))
        (P.nodes p))
    sol.flows;
  (* port budgets from the summed flows *)
  let load edges =
    R.sum
      (List.concat_map
         (fun e ->
           List.map
             (fun (_, flow) -> R.mul flow.(e) (P.edge_cost p e))
             sol.flows)
         edges)
  in
  List.iter
    (fun i ->
      if R.Infix.(load (P.out_edges p i) > R.one) then
        set_err (err "out-port overload at %s" (P.name p i));
      if R.Infix.(load (P.in_edges p i) > R.one) then
        set_err (err "in-port overload at %s" (P.name p i)))
    (P.nodes p);
  !result
