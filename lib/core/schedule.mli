(** Periodic steady-state schedules (§4.1).

    A schedule describes one period of duration [T]: a sequence of
    communication {e slots} — within a slot all transfers form a matching
    of the sender/receiver bipartite graph, so they may run
    simultaneously under the one-port model — plus per-node compute
    amounts that overlap with communication (full-overlap model).

    Slots come out of the weighted bipartite edge colouring
    ({!Bipartite_coloring}): the LP one-port constraints guarantee the
    maximum weighted degree is at most [T], hence the slots fit in the
    period.  This polynomial-size description is exactly the paper's
    answer to "[T] may be exponential, don't describe each time step".

    Items are the problem's unit of payload (task files, scatter
    messages...); [kind] distinguishes payload classes (e.g. the target
    processor of a scatter message) and is opaque here. *)

type transfer = {
  edge : Platform.edge;
  kind : int;
  items : Rat.t; (** number of items moved in this slot *)
  item_size : Rat.t; (** data units per item *)
  delay : int;
      (** first period in which this transfer runs: items of a kind can
          only be forwarded once upstream nodes have started supplying
          them, and different kinds ramp at different depths *)
}

type slot = {
  offset : Rat.t; (** start, relative to the period start *)
  duration : Rat.t;
  transfers : transfer list; (** a matching: disjoint senders, receivers *)
}

type demand = {
  d_edge : Platform.edge;
  d_kind : int;
  d_items : Rat.t; (** items per period *)
  d_item_size : Rat.t;
  d_delay : int;
}

type t = {
  platform : Platform.t;
  period : Rat.t;
  slots : slot list; (** consecutive, [offset]s increasing *)
  compute : (Platform.node * Rat.t) list;
      (** work units per node per period (at most one entry per node) *)
  delays : int array;
      (** per node: how many periods to wait before activating its
          {e compute} plan; together with the per-transfer delays this
          bounds the ramp-up (initialisation) phase of §4.2 *)
  demands : demand array;
      (** the communication volumes this schedule was reconstructed
          from, in input order — the provenance a later warm
          [reconstruct ?prev] repairs against *)
}

val reconstruct :
  ?prev:t ->
  ?budget:int ->
  ?stats:Lp.Stats.t ->
  Platform.t ->
  period:Rat.t ->
  transfers:demand list ->
  compute:(Platform.node * Rat.t) list ->
  delays:int array ->
  t
(** [reconstruct p ~period ~transfers ~compute ~delays] orchestrates the
    given per-period communication volumes into matching slots via
    weighted bipartite edge colouring.

    [?prev] warm-starts the reconstruction from a previous schedule
    (typically the preceding phase of a sweep): unchanged inputs return
    the previous slot sequence outright; otherwise the previous slots
    seed the colouring ({!Bipartite_coloring.decompose}'s [?seed]) and
    any slot whose matching and durations survived is taken over without
    re-deriving its transfers.  [?budget] bounds the repair work spent
    on a drifted seed before falling back to a cold peeling
    ({!Bipartite_coloring.decompose}'s [?budget]).  The warm result
    satisfies exactly the same contract as a cold one — same period,
    same per-edge volumes, {!check_well_formed} holds — and on
    unchanged inputs it is bit-identical to the cold result.  [?stats]
    accumulates repair-effort counters ({!Lp.Stats}).
    @raise Invalid_argument if the communications cannot fit
    (some port busier than [period]) or some compute exceeds the
    period — the steady-state LPs rule both out. *)

val slot_count : t -> int

val items_on_edge : t -> Platform.edge -> kind:int -> Rat.t
(** Total items of a kind crossing an edge per period. *)

val compute_work : t -> Platform.node -> Rat.t

val check_well_formed : t -> (unit, string) result
(** Structural audit: slots within the period and non-overlapping, slot
    transfers are matchings that fit their duration, computes fit the
    period. *)

val execute :
  sim:Event_sim.t -> periods:int -> ?strict:bool -> t -> unit
(** Program [periods] periods of the schedule into the simulator
    (starting at the simulator's time origin; caller runs it).  Node
    plans are activated only from period [delays.(node)] on; transfers
    are activated from period [delays.(source)].  With [strict] (the
    default), any one-port violation raises {!Event_sim.Conflict} — a
    successful strict run is a machine-checked feasibility certificate
    for the reconstruction. *)

val pp : Format.formatter -> t -> unit

val render_timeline : ?width:int -> t -> string
(** ASCII Gantt chart of one period: one lane per busy resource (cpu /
    send / recv per node), time scaled to [width] columns (default 64).
    Communication slots show the kind digit of the transfer they carry;
    compute lanes show [#].  Intended for humans: exact numbers live in
    {!pp}. *)
