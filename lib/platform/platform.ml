module R = Rat
module E = Ext_rat

type node = int
type edge = int

type t = {
  names : string array;
  weights : E.t array;
  srcs : int array;
  dsts : int array;
  costs : R.t array;
  out_adj : edge list array; (* edge indices, ascending *)
  in_adj : edge list array;
  by_name : (string, node) Hashtbl.t;
}

let create ~names ~weights ~edges =
  let p = Array.length names in
  if Array.length weights <> p then
    invalid_arg "Platform.create: |names| <> |weights|";
  let by_name = Hashtbl.create (2 * p) in
  Array.iteri
    (fun i n ->
      if n = "" then invalid_arg "Platform.create: empty node name";
      if Hashtbl.mem by_name n then
        invalid_arg (Printf.sprintf "Platform.create: duplicate name %S" n);
      Hashtbl.add by_name n i)
    names;
  Array.iteri
    (fun i w ->
      match w with
      | E.Inf -> ()
      | E.Fin r ->
        if R.sign r <= 0 then
          invalid_arg
            (Printf.sprintf "Platform.create: node %s has weight <= 0"
               names.(i)))
    weights;
  let m = List.length edges in
  let srcs = Array.make m 0 and dsts = Array.make m 0 in
  let costs = Array.make m R.zero in
  let seen = Hashtbl.create (2 * m) in
  List.iteri
    (fun k (i, j, c) ->
      if i < 0 || i >= p || j < 0 || j >= p then
        invalid_arg "Platform.create: edge endpoint out of range";
      if i = j then invalid_arg "Platform.create: self-loop";
      if R.sign c <= 0 then
        invalid_arg
          (Printf.sprintf "Platform.create: edge %s->%s has cost <= 0"
             names.(i) names.(j));
      if Hashtbl.mem seen (i, j) then
        invalid_arg
          (Printf.sprintf "Platform.create: duplicate edge %s->%s" names.(i)
             names.(j));
      Hashtbl.add seen (i, j) ();
      srcs.(k) <- i;
      dsts.(k) <- j;
      costs.(k) <- c)
    edges;
  let out_adj = Array.make p [] and in_adj = Array.make p [] in
  for k = m - 1 downto 0 do
    out_adj.(srcs.(k)) <- k :: out_adj.(srcs.(k));
    in_adj.(dsts.(k)) <- k :: in_adj.(dsts.(k))
  done;
  { names; weights; srcs; dsts; costs; out_adj; in_adj; by_name }

let num_nodes t = Array.length t.names
let num_edges t = Array.length t.srcs

let name t i = t.names.(i)
let weight t i = t.weights.(i)

let speed t i =
  match t.weights.(i) with E.Inf -> R.zero | E.Fin w -> R.inv w

let find_node t n =
  match Hashtbl.find_opt t.by_name n with
  | Some i -> i
  | None -> raise Not_found

let nodes t = List.init (num_nodes t) Fun.id
let edges t = List.init (num_edges t) Fun.id

let edge_src t e = t.srcs.(e)
let edge_dst t e = t.dsts.(e)
let edge_cost t e = t.costs.(e)
let out_edges t i = t.out_adj.(i)
let in_edges t i = t.in_adj.(i)

let find_edge t i j =
  List.find_opt (fun e -> t.dsts.(e) = j) t.out_adj.(i)

let edge_name t e =
  Printf.sprintf "%s->%s" t.names.(t.srcs.(e)) t.names.(t.dsts.(e))

let reachable_from t start =
  let seen = Array.make (num_nodes t) false in
  let rec go = function
    | [] -> ()
    | i :: rest ->
      let next =
        List.fold_left
          (fun acc e ->
            let j = t.dsts.(e) in
            if seen.(j) then acc
            else begin
              seen.(j) <- true;
              j :: acc
            end)
          rest t.out_adj.(i)
      in
      go next
  in
  seen.(start) <- true;
  go [ start ];
  seen

let depth_from t start =
  let dist = Array.make (num_nodes t) (-1) in
  dist.(start) <- 0;
  let q = Queue.create () in
  Queue.add start q;
  let maxd = ref 0 in
  while not (Queue.is_empty q) do
    let i = Queue.pop q in
    List.iter
      (fun e ->
        let j = t.dsts.(e) in
        if dist.(j) < 0 then begin
          dist.(j) <- dist.(i) + 1;
          if dist.(j) > !maxd then maxd := dist.(j);
          Queue.add j q
        end)
      t.out_adj.(i)
  done;
  !maxd

let is_spanning_from t start =
  Array.for_all Fun.id (reachable_from t start)

(* Dijkstra from a set of sources; returns per-node predecessor edge *)
let dijkstra t sources =
  let n = num_nodes t in
  let dist = Array.make n None in
  let via = Array.make n None in
  let visited = Array.make n false in
  List.iter (fun s -> dist.(s) <- Some R.zero) sources;
  let rec pick () =
    let best = ref None in
    for i = 0 to n - 1 do
      if not visited.(i) then begin
        match (dist.(i), !best) with
        | Some d, Some (_, bd) when R.compare d bd < 0 -> best := Some (i, d)
        | Some d, None -> best := Some (i, d)
        | Some _, Some _ | None, _ -> ()
      end
    done;
    match !best with
    | None -> ()
    | Some (u, du) ->
      visited.(u) <- true;
      List.iter
        (fun e ->
          let v = t.dsts.(e) in
          let nd = R.add du t.costs.(e) in
          match dist.(v) with
          | Some old when R.compare old nd <= 0 -> ()
          | Some _ | None ->
            dist.(v) <- Some nd;
            via.(v) <- Some e)
        t.out_adj.(u);
      pick ()
  in
  pick ();
  (dist, via)

let path_via t via sources dst =
  let rec walk v acc =
    if List.mem v sources then Some acc
    else begin
      match via.(v) with
      | None -> None
      | Some e -> walk t.srcs.(e) (e :: acc)
    end
  in
  walk dst []

let multi_source_shortest_path t ~sources dst =
  if sources = [] then invalid_arg "Platform.multi_source_shortest_path: no sources";
  if List.mem dst sources then Some []
  else begin
    let dist, via = dijkstra t sources in
    match dist.(dst) with
    | None -> None
    | Some _ -> path_via t via sources dst
  end

let shortest_path t src dst = multi_source_shortest_path t ~sources:[ src ] dst

let transpose t =
  create ~names:(Array.copy t.names) ~weights:(Array.copy t.weights)
    ~edges:
      (List.init (num_edges t) (fun e -> (t.dsts.(e), t.srcs.(e), t.costs.(e))))

let reachable_via t ~alive start =
  let seen = Array.make (num_nodes t) false in
  let rec go = function
    | [] -> ()
    | i :: rest ->
      let next =
        List.fold_left
          (fun acc e ->
            let j = t.dsts.(e) in
            if (not (alive e)) || seen.(j) then acc
            else begin
              seen.(j) <- true;
              j :: acc
            end)
          rest t.out_adj.(i)
      in
      go next
  in
  seen.(start) <- true;
  go [ start ];
  seen

let restrict_nodes t ~keep =
  let old_of_new = ref [] in
  let new_of_old = Array.make (num_nodes t) (-1) in
  let count = ref 0 in
  for i = 0 to num_nodes t - 1 do
    if keep i then begin
      new_of_old.(i) <- !count;
      old_of_new := i :: !old_of_new;
      incr count
    end
  done;
  let old_of_new = Array.of_list (List.rev !old_of_new) in
  let edges =
    List.filter_map
      (fun e ->
        let i = t.srcs.(e) and j = t.dsts.(e) in
        if new_of_old.(i) >= 0 && new_of_old.(j) >= 0 then
          Some (new_of_old.(i), new_of_old.(j), t.costs.(e))
        else None)
      (edges t)
  in
  let sub =
    create
      ~names:(Array.map (fun i -> t.names.(i)) old_of_new)
      ~weights:(Array.map (fun i -> t.weights.(i)) old_of_new)
      ~edges
  in
  (sub, old_of_new)

type restriction = {
  sub : t;
  node_of_sub : node array;
  sub_of_node : int array;
  edge_of_sub : edge array;
  sub_of_edge : int array;
}

let restrict ?weights:weight_of t ~keep_node ~keep_edge =
  let n = num_nodes t and m = num_edges t in
  let node_of_sub = ref [] in
  let sub_of_node = Array.make n (-1) in
  let count = ref 0 in
  for i = 0 to n - 1 do
    if keep_node i then begin
      sub_of_node.(i) <- !count;
      node_of_sub := i :: !node_of_sub;
      incr count
    end
  done;
  let node_of_sub = Array.of_list (List.rev !node_of_sub) in
  let edge_of_sub = ref [] in
  let sub_of_edge = Array.make m (-1) in
  let ecount = ref 0 in
  let sub_edges = ref [] in
  for e = 0 to m - 1 do
    let i = t.srcs.(e) and j = t.dsts.(e) in
    if sub_of_node.(i) >= 0 && sub_of_node.(j) >= 0 && keep_edge e then begin
      sub_of_edge.(e) <- !ecount;
      edge_of_sub := e :: !edge_of_sub;
      sub_edges := (sub_of_node.(i), sub_of_node.(j), t.costs.(e)) :: !sub_edges;
      incr ecount
    end
  done;
  let edge_of_sub = Array.of_list (List.rev !edge_of_sub) in
  let weight_of =
    match weight_of with Some f -> f | None -> fun i -> t.weights.(i)
  in
  let sub =
    create
      ~names:(Array.map (fun i -> t.names.(i)) node_of_sub)
      ~weights:(Array.map weight_of node_of_sub)
      ~edges:(List.rev !sub_edges)
  in
  { sub; node_of_sub; sub_of_node; edge_of_sub; sub_of_edge }

let identity_restriction t =
  let n = num_nodes t and m = num_edges t in
  {
    sub = t;
    node_of_sub = Array.init n Fun.id;
    sub_of_node = Array.init n Fun.id;
    edge_of_sub = Array.init m Fun.id;
    sub_of_edge = Array.init m Fun.id;
  }

(* [inner] restricts [outer.sub]; the composite maps [outer]'s original
   platform directly onto [inner.sub].  An original resource survives
   iff it survives both restrictions. *)
let compose ~outer ~inner =
  let sub_of_node =
    Array.map
      (fun s -> if s < 0 then -1 else inner.sub_of_node.(s))
      outer.sub_of_node
  in
  let sub_of_edge =
    Array.map
      (fun s -> if s < 0 then -1 else inner.sub_of_edge.(s))
      outer.sub_of_edge
  in
  {
    sub = inner.sub;
    node_of_sub = Array.map (fun s -> outer.node_of_sub.(s)) inner.node_of_sub;
    sub_of_node;
    edge_of_sub = Array.map (fun s -> outer.edge_of_sub.(s)) inner.edge_of_sub;
    sub_of_edge;
  }

let transfer_maps ~src ~dst =
  let node_map =
    Array.map (fun orig -> dst.sub_of_node.(orig)) src.node_of_sub
  in
  let edge_map =
    Array.map (fun orig -> dst.sub_of_edge.(orig)) src.edge_of_sub
  in
  (node_map, edge_map)

let pp ppf t =
  Format.fprintf ppf "platform: %d nodes, %d edges@." (num_nodes t)
    (num_edges t);
  Array.iteri
    (fun i n -> Format.fprintf ppf "  node %s w=%a@." n E.pp t.weights.(i))
    t.names;
  for e = 0 to num_edges t - 1 do
    Format.fprintf ppf "  edge %s c=%a@." (edge_name t e) R.pp t.costs.(e)
  done

let equal a b =
  num_nodes a = num_nodes b
  && num_edges a = num_edges b
  && a.names = b.names
  && Array.for_all2 E.equal a.weights b.weights
  && a.srcs = b.srcs
  && a.dsts = b.dsts
  && Array.for_all2 R.equal a.costs b.costs
