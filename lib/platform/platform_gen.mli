(** Platform generators: the paper's exemplar platforms plus synthetic
    families used by the experiments and benches.

    All random generators are deterministic in their [seed]; every edge
    they emit is mirrored (two oriented edges per physical link) unless
    stated otherwise. *)

val figure1 : unit -> Platform.t
(** The 6-node platform of Figure 1.  The paper labels nodes and edges
    symbolically ([w_i], [c_ij]) without numeric values; we fix concrete
    heterogeneous values (documented in EXPERIMENTS.md) with [P1] as the
    master.  Links are full duplex: each drawn edge becomes two oriented
    edges.  Node names ["P1" .. "P6"]. *)

val multicast_fig2 : unit -> Platform.t * Platform.node * Platform.node list
(** The 7-node multicast counterexample platform of Figure 2, with unit
    edge costs except [c(P3->P4) = 2], reconstructed from the flows in
    Figures 3(a)-(d).  Returns [(platform, source P0, targets [P5; P6])].
    Edges are oriented exactly as in the figure (no mirrors): this is the
    platform on which the max-based multicast LP reaches throughput 1
    while no actual schedule does. *)

val star :
  master_weight:Ext_rat.t ->
  slaves:(Ext_rat.t * Rat.t) list ->
  unit ->
  Platform.t
(** Single-level master–slave star: [slaves] gives each slave's weight
    and its (full-duplex) link cost.  Node 0 is the master ["M"]; slaves
    are ["S1" .. "Sk"]. *)

val chain : weights:Ext_rat.t list -> cost:Rat.t -> unit -> Platform.t
(** Linear chain [P0 -> P1 -> ... ] with uniform full-duplex link cost. *)

val odd_cycle_relay : k:int -> unit -> Platform.t
(** Adversarial instance for the §5.1.1 send-or-receive greedy: a relay
    path ["M" -> "R1" -> ... -> "R2k-1" -> "C"] with link cost 1/2 plus
    a shortcut ["M" -> "C"] with cost 1; only ["C"] computes (weight
    1/2), every other node is a pure relay (weight [Inf]).  Oriented
    edges, no mirrors; node 0 is the master.  At the (unique) LP
    optimum every link is busy exactly half the period, and the
    send-or-receive conflict graph of the busy links is the odd cycle
    [C_{2k+1}] — 3-chromatic, so any round decomposition needs three
    rounds of half a period and the greedy's efficiency is exactly 2/3,
    independent of [k].  This pins the implementation's worst case well
    inside the factor-2 bound of the greedy-matching argument. *)

val random_tree :
  seed:int ->
  nodes:int ->
  ?max_degree:int ->
  ?weight_range:int * int ->
  ?cost_range:int * int ->
  unit ->
  Platform.t
(** Random heterogeneous tree rooted at node 0: weights in
    [weight_range] (default [1, 10]), costs in [cost_range] (default
    [1, 5]) — rationals with small denominators — full duplex.
    [?max_degree] caps every node's tree-link degree (parent link
    included): each child picks its parent uniformly among the earlier
    nodes still under the cap, yielding path-like platforms at 2 and
    bushy ones unconstrained.  With all defaults the random stream is
    byte-identical to what this generator always produced, so seeded
    platforms in tests and recorded benches are unchanged.
    @raise Invalid_argument on an empty/invalid range, [max_degree < 1],
    or a cap so tight some child has no eligible parent. *)

val balanced_tree :
  seed:int -> nodes:int -> ?arity:int -> unit -> Platform.t
(** Deterministic-shape [arity]-ary tree (default binary): node [i]'s
    parent is [(i-1)/arity], so node counts like 10^2..10^4 give
    predictable depth — the scaling bench's platform family.  Weights
    and costs are drawn from the same seeded distributions as
    {!random_tree}. *)

val random_graph :
  seed:int -> nodes:int -> extra_edges:int -> unit -> Platform.t
(** Random connected platform: a random spanning tree plus [extra_edges]
    random chords, heterogeneous weights and costs, full duplex.
    Cycles and multiple routes exercise the general-graph code paths. *)

val random_connected_graph :
  seed:int ->
  nodes:int ->
  extra_edges:int ->
  ?max_degree:int ->
  ?weight_range:int * int ->
  ?cost_range:int * int ->
  unit ->
  Platform.t
(** Random connected general graph with controlled heterogeneity: a
    random spanning tree (connectivity by construction) plus up to
    [extra_edges] distinct random chords, weights in [weight_range]
    (default [1, 10]), costs in [cost_range] (default [1, 5]) —
    rationals with small denominators — full duplex.  [?max_degree]
    caps every node's physical-link degree (tree link and chords
    together); chord draws that would exceed a cap are rejected, so
    fewer than [extra_edges] chords may land.  The random stream is a
    function of [(seed, nodes, extra_edges)] only and the default
    stream is independent of the optional arguments' {e presence} — the
    same stream-stability contract as {!random_tree}: seeded platforms
    recorded in tests and benches never move when new knobs grow.
    Unlike the star generators, node 0 ("P0") is an ordinary computing
    node; chaos campaigns use it as the master.
    @raise Invalid_argument on [nodes < 2], a negative [extra_edges],
    an empty/invalid range, [max_degree < 2], or a cap so tight some
    spanning-tree child has no eligible parent. *)

val mesh : seed:int -> rows:int -> cols:int -> unit -> Platform.t
(** 2D mesh (grid) of computing nodes with full-duplex nearest-neighbour
    links — the classic regular-topology stress test for the relaying
    machinery.  Heterogeneous weights, mildly varying link costs. *)

val clusters :
  seed:int -> clusters:int -> per_cluster:int -> unit -> Platform.t
(** Two-level grid-like platform: cluster heads connected in a ring by
    slow backbone links, each head serving [per_cluster] local nodes over
    fast links — the "cluster of clusters" shape of actual grids. *)
