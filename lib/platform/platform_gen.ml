module R = Rat
module E = Ext_rat

let mirror edges = List.concat_map (fun (i, j, c) -> [ (i, j, c); (j, i, c) ]) edges

(* Figure 1: P1..P6 with drawn links 1-2, 1-3, 2-4, 2-5, 3-6, 4-5, 5-6.
   Numeric values are ours (the figure is symbolic); chosen heterogeneous
   and small so periods stay readable. *)
let figure1 () =
  let names = [| "P1"; "P2"; "P3"; "P4"; "P5"; "P6" |] in
  let w = List.map E.of_int [ 3; 2; 3; 1; 4; 2 ] in
  let weights = Array.of_list w in
  let c = R.of_int in
  let links =
    [
      (0, 1, c 1); (* c12 *)
      (0, 2, c 2); (* c13 *)
      (1, 3, c 1); (* c24 *)
      (1, 4, c 3); (* c25 *)
      (2, 5, c 2); (* c36 *)
      (3, 4, c 1); (* c45 *)
      (4, 5, c 1); (* c56 *)
    ]
  in
  Platform.create ~names ~weights ~edges:(mirror links)

(* Figure 2: oriented edges, unit costs except c(P3->P4) = 2.  The edge
   set is recovered from Figures 3(a)-(d): the per-target flows use
   routes P0->P1->P5, P0->P2->P3->P4->P5 (target P5) and
   P0->P1->P3->P4->P6, P0->P2->P6 (target P6); edge P3->P4 is the one
   carrying one [a] and one [b] message per period. *)
let multicast_fig2 () =
  let names = [| "P0"; "P1"; "P2"; "P3"; "P4"; "P5"; "P6" |] in
  (* pure routers: computation plays no role in the multicast problem *)
  let weights = Array.make 7 E.inf in
  let one = R.one and two = R.two in
  let edges =
    [
      (0, 1, one);
      (0, 2, one);
      (1, 5, one);
      (1, 3, one);
      (2, 3, one);
      (2, 6, one);
      (3, 4, two);
      (4, 5, one);
      (4, 6, one);
    ]
  in
  (Platform.create ~names ~weights ~edges, 0, [ 5; 6 ])

let star ~master_weight ~slaves () =
  let k = List.length slaves in
  let names =
    Array.init (k + 1) (fun i -> if i = 0 then "M" else Printf.sprintf "S%d" i)
  in
  let weights =
    Array.of_list (master_weight :: List.map fst slaves)
  in
  let links = List.mapi (fun i (_, c) -> (0, i + 1, c)) slaves in
  Platform.create ~names ~weights ~edges:(mirror links)

let chain ~weights ~cost () =
  let n = List.length weights in
  if n < 2 then invalid_arg "Platform_gen.chain: need >= 2 nodes";
  let names = Array.init n (fun i -> Printf.sprintf "P%d" i) in
  let links = List.init (n - 1) (fun i -> (i, i + 1, cost)) in
  Platform.create ~names ~weights:(Array.of_list weights)
    ~edges:(mirror links)

(* Adversarial family for the send-or-receive greedy (§5.1.1): a relay
   path M -> R1 -> ... -> R_{2k-1} -> C (costs 1/2) plus a direct
   shortcut M -> C (cost 1).  Pure relays force equal activity along the
   path, the interior port caps pin it at s = 1/2, and the shortcut
   fills the two end ports to the same 1/2 — so at the unique LP
   optimum all 2k+1 links are busy exactly half the period and their
   send-or-receive conflict graph is the odd cycle C_{2k+1}.  An odd
   cycle has chromatic number 3, so ANY decomposition into independent
   rounds needs >= 3 rounds of length T/2: the greedy lands at
   comm_length = 3T/2 and efficiency exactly 2/3, for every k. *)
let odd_cycle_relay ~k () =
  if k < 1 then invalid_arg "Platform_gen.odd_cycle_relay: need k >= 1";
  let n = (2 * k) + 1 in
  let names =
    Array.init n (fun i ->
        if i = 0 then "M"
        else if i = n - 1 then "C"
        else Printf.sprintf "R%d" i)
  in
  let weights =
    Array.init n (fun i -> if i = n - 1 then E.of_ints 1 2 else E.inf)
  in
  let half = R.of_ints 1 2 in
  let links = List.init (n - 1) (fun i -> (i, i + 1, half)) in
  Platform.create ~names ~weights ~edges:(links @ [ (0, n - 1, R.one) ])

let rand_rat st lo hi den =
  (* rational in [lo, hi] with denominator dividing den *)
  let span = (hi - lo) * den in
  R.of_ints ((lo * den) + Random.State.int st (span + 1)) den

let check_range fn what (lo, hi) =
  if lo < 1 || hi < lo then
    invalid_arg (Printf.sprintf "Platform_gen.%s: bad %s range" fn what)

let random_tree ~seed ~nodes ?max_degree ?(weight_range = (1, 10))
    ?(cost_range = (1, 5)) () =
  if nodes < 1 then invalid_arg "Platform_gen.random_tree: need >= 1 node";
  (match max_degree with
  | Some d when d < 1 -> invalid_arg "Platform_gen.random_tree: max_degree < 1"
  | _ -> ());
  check_range "random_tree" "weight" weight_range;
  check_range "random_tree" "cost" cost_range;
  let st = Random.State.make [| seed; nodes |] in
  let wlo, whi = weight_range and clo, chi = cost_range in
  let names = Array.init nodes (fun i -> Printf.sprintf "P%d" i) in
  let weights =
    Array.init nodes (fun _ -> E.of_rat (rand_rat st wlo whi 2))
  in
  (* Without [max_degree] the parent draw is [int st child] — the exact
     historical stream, so default-argument calls stay byte-identical.
     With it, the parent is drawn uniformly from the still-eligible
     earlier nodes (tree-link degree < max_degree). *)
  let deg = Array.make nodes 0 in
  let links =
    List.init (nodes - 1) (fun i ->
        let child = i + 1 in
        let parent =
          match max_degree with
          | None -> Random.State.int st child
          | Some d -> (
            let eligible =
              List.filter (fun j -> deg.(j) < d) (List.init child Fun.id)
            in
            match eligible with
            | [] ->
              invalid_arg
                "Platform_gen.random_tree: max_degree leaves no eligible \
                 parent"
            | l -> List.nth l (Random.State.int st (List.length l)))
        in
        deg.(parent) <- deg.(parent) + 1;
        deg.(child) <- deg.(child) + 1;
        (parent, child, rand_rat st clo chi 2))
  in
  Platform.create ~names ~weights ~edges:(mirror links)

let balanced_tree ~seed ~nodes ?(arity = 2) () =
  if nodes < 1 then invalid_arg "Platform_gen.balanced_tree: need >= 1 node";
  if arity < 1 then invalid_arg "Platform_gen.balanced_tree: need arity >= 1";
  let st = Random.State.make [| seed; nodes; arity; 41 |] in
  let names = Array.init nodes (fun i -> Printf.sprintf "P%d" i) in
  let weights =
    Array.init nodes (fun _ -> E.of_rat (rand_rat st 1 10 2))
  in
  let links =
    List.init (nodes - 1) (fun i ->
        let child = i + 1 in
        ((child - 1) / arity, child, rand_rat st 1 5 2))
  in
  Platform.create ~names ~weights ~edges:(mirror links)

let random_graph ~seed ~nodes ~extra_edges () =
  if nodes < 2 then invalid_arg "Platform_gen.random_graph: need >= 2 nodes";
  let st = Random.State.make [| seed; nodes; extra_edges; 17 |] in
  let names = Array.init nodes (fun i -> Printf.sprintf "P%d" i) in
  let weights =
    Array.init nodes (fun _ -> E.of_rat (rand_rat st 1 10 2))
  in
  let seen = Hashtbl.create 64 in
  let links = ref [] in
  let add i j =
    if i <> j && not (Hashtbl.mem seen (i, j)) then begin
      Hashtbl.add seen (i, j) ();
      Hashtbl.add seen (j, i) ();
      links := (i, j, rand_rat st 1 5 2) :: !links;
      true
    end
    else false
  in
  for child = 1 to nodes - 1 do
    ignore (add (Random.State.int st child) child)
  done;
  let added = ref 0 in
  let attempts = ref 0 in
  while !added < extra_edges && !attempts < 50 * (extra_edges + 1) do
    incr attempts;
    let i = Random.State.int st nodes and j = Random.State.int st nodes in
    if add i j then incr added
  done;
  Platform.create ~names ~weights ~edges:(mirror !links)

let random_connected_graph ~seed ~nodes ~extra_edges ?max_degree
    ?(weight_range = (1, 10)) ?(cost_range = (1, 5)) () =
  if nodes < 2 then
    invalid_arg "Platform_gen.random_connected_graph: need >= 2 nodes";
  if extra_edges < 0 then
    invalid_arg "Platform_gen.random_connected_graph: extra_edges < 0";
  (match max_degree with
  | Some d when d < 2 ->
    invalid_arg "Platform_gen.random_connected_graph: max_degree < 2"
  | _ -> ());
  check_range "random_connected_graph" "weight" weight_range;
  check_range "random_connected_graph" "cost" cost_range;
  let st = Random.State.make [| seed; nodes; extra_edges; 53 |] in
  let wlo, whi = weight_range and clo, chi = cost_range in
  let names = Array.init nodes (fun i -> Printf.sprintf "P%d" i) in
  let weights =
    Array.init nodes (fun _ -> E.of_rat (rand_rat st wlo whi 2))
  in
  let deg = Array.make nodes 0 in
  let seen = Hashtbl.create 64 in
  let links = ref [] in
  let add i j =
    if i <> j && not (Hashtbl.mem seen (i, j)) then begin
      Hashtbl.add seen (i, j) ();
      Hashtbl.add seen (j, i) ();
      deg.(i) <- deg.(i) + 1;
      deg.(j) <- deg.(j) + 1;
      links := (i, j, rand_rat st clo chi 2) :: !links;
      true
    end
    else false
  in
  (* Spanning tree first (connectivity by construction), then chords.
     Without [max_degree] the parent draw is [int st child], matching
     {!random_tree}'s historical stream shape; with it the parent is
     drawn uniformly from the still-eligible earlier nodes. *)
  for child = 1 to nodes - 1 do
    let parent =
      match max_degree with
      | None -> Random.State.int st child
      | Some d -> (
        let eligible =
          List.filter (fun j -> deg.(j) < d) (List.init child Fun.id)
        in
        match eligible with
        | [] ->
          invalid_arg
            "Platform_gen.random_connected_graph: max_degree leaves no \
             eligible parent"
        | l -> List.nth l (Random.State.int st (List.length l)))
    in
    ignore (add parent child)
  done;
  let under_cap i =
    match max_degree with None -> true | Some d -> deg.(i) < d
  in
  let added = ref 0 in
  let attempts = ref 0 in
  while !added < extra_edges && !attempts < 50 * (extra_edges + 1) do
    incr attempts;
    let i = Random.State.int st nodes and j = Random.State.int st nodes in
    if under_cap i && under_cap j && add i j then incr added
  done;
  Platform.create ~names ~weights ~edges:(mirror !links)

let mesh ~seed ~rows ~cols () =
  if rows < 1 || cols < 1 then invalid_arg "Platform_gen.mesh: bad dims";
  let st = Random.State.make [| seed; rows; cols; 31 |] in
  let idx i j = (i * cols) + j in
  let names =
    Array.init (rows * cols) (fun k ->
        Printf.sprintf "G%d_%d" (k / cols) (k mod cols))
  in
  let weights =
    Array.init (rows * cols) (fun _ -> E.of_rat (rand_rat st 1 6 2))
  in
  let links = ref [] in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      if i + 1 < rows then
        links := (idx i j, idx (i + 1) j, rand_rat st 1 3 4) :: !links;
      if j + 1 < cols then
        links := (idx i j, idx i (j + 1), rand_rat st 1 3 4) :: !links
    done
  done;
  Platform.create ~names ~weights ~edges:(mirror !links)

let clusters ~seed ~clusters ~per_cluster () =
  if clusters < 1 then invalid_arg "Platform_gen.clusters: need >= 1";
  let st = Random.State.make [| seed; clusters; per_cluster; 23 |] in
  let total = clusters * (per_cluster + 1) in
  let head c = c * (per_cluster + 1) in
  let names =
    Array.init total (fun i ->
        let c = i / (per_cluster + 1) and r = i mod (per_cluster + 1) in
        if r = 0 then Printf.sprintf "H%d" c else Printf.sprintf "N%d_%d" c r)
  in
  let weights =
    Array.init total (fun i ->
        let r = i mod (per_cluster + 1) in
        if r = 0 then E.inf (* heads route, they do not compute *)
        else E.of_rat (rand_rat st 1 8 2))
  in
  let links = ref [] in
  (* slow backbone ring between heads *)
  if clusters = 2 then links := (head 0, head 1, rand_rat st 4 8 1) :: !links
  else if clusters > 2 then
    for c = 0 to clusters - 1 do
      links := (head c, head ((c + 1) mod clusters), rand_rat st 4 8 1) :: !links
    done;
  (* fast local links *)
  for c = 0 to clusters - 1 do
    for r = 1 to per_cluster do
      links := (head c, head c + r, rand_rat st 1 2 4) :: !links
    done
  done;
  Platform.create ~names ~weights ~edges:(mirror !links)
