(** The platform model of §2.

    A platform is a node-weighted edge-weighted directed graph
    [G = (V, E, w, c)]: node [Pi] needs [w_i] time units per computational
    unit ([w_i = +oo] for a node that can only forward data), and edge
    [e_ij] needs [c_ij] time units per data unit.  Edges are oriented; a
    full-duplex physical link is two edges.  All [c_ij] are finite and
    positive — a missing link is simply an absent edge.

    The operation mode is the {e full-overlap, single-port} model: a node
    can simultaneously receive from at most one neighbour, send to at most
    one neighbour, and compute. *)

type t

type node = int
(** Dense indices [0 .. num_nodes-1]. *)

type edge = int
(** Dense indices [0 .. num_edges-1]. *)

(** {1 Construction} *)

val create :
  names:string array ->
  weights:Ext_rat.t array ->
  edges:(int * int * Rat.t) list ->
  t
(** [create ~names ~weights ~edges] builds a platform.  [weights.(i)] is
    [w_i]; each [(i, j, c)] in [edges] is an oriented link with cost
    [c > 0].  Validation: array lengths agree, names unique and non-empty,
    no finite non-positive weight, costs positive, endpoints in range, no
    self-loops, no duplicate [(i, j)] edges.
    @raise Invalid_argument if any check fails. *)

(** {1 Size} *)

val num_nodes : t -> int
val num_edges : t -> int

(** {1 Nodes} *)

val name : t -> node -> string
val weight : t -> node -> Ext_rat.t

val speed : t -> node -> Rat.t
(** [1 / w_i]; zero when [w_i = +oo].  This is the rate at which the node
    processes computational units, the form in which [w_i] enters LPs. *)

val find_node : t -> string -> node
(** @raise Not_found on unknown name. *)

val nodes : t -> node list

(** {1 Edges} *)

val edge_src : t -> edge -> node
val edge_dst : t -> edge -> node
val edge_cost : t -> edge -> Rat.t
val edges : t -> edge list
val out_edges : t -> node -> edge list
val in_edges : t -> node -> edge list
val find_edge : t -> node -> node -> edge option
val edge_name : t -> edge -> string
(** ["src->dst"] using node names; for diagnostics and LP variable names. *)

(** {1 Graph queries} *)

val reachable_from : t -> node -> bool array
(** Nodes reachable by directed paths (including the start node). *)

val depth_from : t -> node -> int
(** Eccentricity of [node] over its reachable set (BFS hop count): the
    number of periods needed to ramp into steady state is bounded by this
    (§4.2). *)

val is_spanning_from : t -> node -> bool
(** All nodes reachable from [node]? *)

val shortest_path : t -> node -> node -> edge list option
(** Minimum-cost directed path under the edge costs (Dijkstra); [None]
    if unreachable, [Some []] when source = destination. *)

val multi_source_shortest_path :
  t -> sources:node list -> node -> edge list option
(** Cheapest path from {e any} of the sources to the destination — the
    building block of cheapest-insertion Steiner heuristics. *)

val transpose : t -> t
(** Platform with every edge reversed (costs kept) — reduce operations
    are scatters on the transposed platform (§4.2). *)

val reachable_via : t -> alive:(edge -> bool) -> node -> bool array
(** Like {!reachable_from}, but only traversing edges for which [alive]
    holds — the connectivity query of failure-aware planning: which
    nodes can the master still feed over surviving links? *)

val restrict_nodes : t -> keep:(node -> bool) -> t * node array
(** Induced sub-platform on the kept nodes; also returns the array
    mapping new indices to old ones. *)

type restriction = {
  sub : t;  (** the restricted platform *)
  node_of_sub : node array;  (** sub node index -> original node *)
  sub_of_node : int array;  (** original node -> sub index, [-1] if dropped *)
  edge_of_sub : edge array;  (** sub edge index -> original edge *)
  sub_of_edge : int array;  (** original edge -> sub index, [-1] if dropped *)
}
(** A sub-platform together with both directions of the index
    renaming, so plans computed on [sub] can be executed on (and
    measurements read back from) the original platform. *)

val restrict :
  ?weights:(node -> Ext_rat.t) ->
  t ->
  keep_node:(node -> bool) ->
  keep_edge:(edge -> bool) ->
  restriction
(** Sub-platform induced by the kept nodes {e minus} the dropped edges
    (an edge survives iff both endpoints are kept and [keep_edge]
    holds).  [?weights] overrides node weights in the restriction —
    failure-aware planners use it to turn a compute-dead but reachable
    node into a pure relay ([Ext_rat.Inf]). *)

val identity_restriction : t -> restriction
(** The trivial restriction keeping everything: [sub] is the platform
    itself and all four index maps are identities. *)

val compose : outer:restriction -> inner:restriction -> restriction
(** [compose ~outer ~inner], where [inner] restricts [outer.sub], is
    the restriction of [outer]'s original platform straight down to
    [inner.sub]: a resource survives iff it survives both layers, and
    the index maps are the compositions. *)

val transfer_maps : src:restriction -> dst:restriction -> int array * int array
(** [transfer_maps ~src ~dst], for two restrictions of the {e same}
    parent platform, returns [(node_map, edge_map)] translating
    [src.sub] indices into [dst.sub] indices ([-1] where the resource
    does not survive in [dst]).  This is the cross-epoch remapping used
    by failure-aware planners to carry warm state from one surviving
    subplatform to the next — including re-expansion when a resource
    recovers ([dst] keeps more than [src]). *)

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
(** Structural equality (same names, weights, edges and costs, in the
    same index order). *)
