(* Command-line interface to the steady-state scheduling library.

   Platforms are read from the text format of Platform_parse; see
   `steady-cli format --help`. *)

open Cmdliner

let read_platform path =
  try Ok (Platform_parse.of_file path) with
  | Invalid_argument msg -> Error msg
  | Sys_error msg -> Error msg

let node_of_name p name =
  match Platform.find_node p name with
  | i -> Ok i
  | exception Not_found ->
    Error (Printf.sprintf "unknown node %S" name)

let ( let* ) = Result.bind

let or_die = function
  | Ok () -> 0
  | Error msg ->
    prerr_endline ("error: " ^ msg);
    1

(* --- common arguments --- *)

let platform_arg =
  let doc = "Platform description file." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"PLATFORM" ~doc)

let master_arg =
  let doc = "Master (source) node name." in
  Arg.(value & opt string "P1" & info [ "master"; "m" ] ~docv:"NODE" ~doc)

let targets_arg =
  let doc = "Comma-separated target node names." in
  Arg.(required & opt (some string) None & info [ "targets"; "t" ] ~docv:"A,B" ~doc)

let periods_arg =
  let doc = "Number of periods to simulate." in
  Arg.(value & opt int 6 & info [ "periods"; "k" ] ~docv:"K" ~doc)

let cache_dir_arg =
  let doc =
    "Persist exact LP solves under $(docv) and reuse them across runs \
     (crash-safe; corrupt records are quarantined and re-solved)."
  in
  let env = Cmd.Env.info "STEADY_CACHE_DIR" ~doc:"Default for --cache-dir." in
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~env ~docv:"DIR" ~doc)

(* Open a disk-backed cache when a directory was requested; on exit
   report its statistics on stderr (stdout carries only the command's
   regular output). *)
let with_cache dir f =
  match dir with
  | None -> f None
  | Some d -> (
    match Lp.Cache.Disk.open_store d with
    | exception e ->
      Error
        (Printf.sprintf "cannot open cache directory %S: %s" d
           (Printexc.to_string e))
    | store ->
      let cache = Lp.Cache.create ~disk:store () in
      let res = f (Some cache) in
      Printf.eprintf
        "cache %s: %d hits (%d from disk), %d misses, %d stored, %d \
         quarantined\n"
        d (Lp.Cache.hits cache)
        (Lp.Cache.disk_hits cache)
        (Lp.Cache.misses cache)
        (Lp.Cache.Disk.stores store)
        (Lp.Cache.Disk.quarantined store);
      res)

(* --- solve-ms --- *)

let solve_ms_cmd =
  let run path master periods cache_dir =
    or_die
      (let* p = read_platform path in
       let* m = node_of_name p master in
       with_cache cache_dir @@ fun cache ->
       let sol = Master_slave.solve ?cache p ~master:m in
       Printf.printf "ntask(G) = %s tasks per time unit\n\n"
         (Rat.to_string sol.Master_slave.ntask);
       List.iter
         (fun i ->
           Printf.printf "  %-10s alpha = %-8s tasks/time = %s\n"
             (Platform.name p i)
             (Rat.to_string sol.Master_slave.alpha.(i))
             (Rat.to_string
                (Rat.mul sol.Master_slave.alpha.(i) (Platform.speed p i))))
         (Platform.nodes p);
       print_newline ();
       let sched = Master_slave.schedule sol in
       Format.printf "%a" Schedule.pp sched;
       let sim_run = Master_slave.simulate ~periods sol in
       Printf.printf
         "\nsimulated %d periods: %s tasks (bound %s, strict one-port: ok)\n"
         periods
         (Rat.to_string sim_run.Master_slave.completed)
         (Rat.to_string sim_run.Master_slave.upper_bound);
       Ok ())
  in
  let doc = "Solve steady-state master-slave tasking (§3.1) and reconstruct the schedule." in
  Cmd.v (Cmd.info "solve-ms" ~doc)
    Term.(const run $ platform_arg $ master_arg $ periods_arg $ cache_dir_arg)

(* --- solve-scatter --- *)

let parse_targets p s =
  let names = String.split_on_char ',' s in
  List.fold_left
    (fun acc name ->
      let* acc = acc in
      let* i = node_of_name p (String.trim name) in
      Ok (acc @ [ i ]))
    (Ok []) names

let solve_scatter_cmd =
  let run path source targets periods cache_dir =
    or_die
      (let* p = read_platform path in
       let* s = node_of_name p source in
       let* tg = parse_targets p targets in
       with_cache cache_dir @@ fun cache ->
       let sol = Scatter.solve ?cache p ~source:s ~targets:tg in
       Printf.printf "scatter throughput TP = %s messages per time unit\n"
         (Rat.to_string sol.Collective.throughput);
       let sim_run = Scatter.simulate ~periods sol in
       Array.iteri
         (fun k d ->
           Printf.printf "  delivered to %s over %s time units: %s\n"
             (Platform.name p (List.nth tg k))
             (Rat.to_string sim_run.Scatter.elapsed)
             (Rat.to_string d))
         sim_run.Scatter.delivered;
       Ok ())
  in
  let doc = "Solve the pipelined scatter LP (§3.2) and simulate the schedule." in
  Cmd.v (Cmd.info "solve-scatter" ~doc)
    Term.(
      const run $ platform_arg $ master_arg $ targets_arg $ periods_arg
      $ cache_dir_arg)

(* --- solve-multicast --- *)

let solve_multicast_cmd =
  let run path source targets cache_dir =
    or_die
      (let* p = read_platform path in
       let* s = node_of_name p source in
       let* tg = parse_targets p targets in
       with_cache cache_dir @@ fun cache ->
       let maxb = Multicast.max_lp_bound ?cache p ~source:s ~targets:tg in
       let sumb = Multicast.scatter_lower_bound ?cache p ~source:s ~targets:tg in
       Printf.printf "max-LP upper bound : %s\n"
         (Rat.to_string maxb.Collective.throughput);
       Printf.printf "scatter lower bound: %s\n"
         (Rat.to_string sumb.Collective.throughput);
       (if Platform.num_edges p <= 24 then begin
          let pack =
            Multicast.best_tree_packing ?cache p ~source:s ~targets:tg
          in
          Printf.printf "best tree packing  : %s  (%d trees)\n"
            (Rat.to_string pack.Multicast.throughput)
            (List.length pack.Multicast.trees);
          if Rat.compare pack.Multicast.throughput maxb.Collective.throughput < 0
          then
            print_endline
              "the max-LP bound is NOT met by tree schedules (cf. §4.3)"
        end
        else print_endline "platform too large for exhaustive tree packing");
       Ok ())
  in
  let doc = "Bracket the pipelined multicast throughput (§3.3/§4.3)." in
  Cmd.v (Cmd.info "solve-multicast" ~doc)
    Term.(const run $ platform_arg $ master_arg $ targets_arg $ cache_dir_arg)

(* --- broadcast --- *)

let broadcast_cmd =
  let run path source cache_dir =
    or_die
      (let* p = read_platform path in
       let* s = node_of_name p source in
       with_cache cache_dir @@ fun cache ->
       let met, bound, achieved = Broadcast.bound_met ?cache p ~source:s in
       Printf.printf "broadcast LP bound: %s\n" (Rat.to_string bound);
       Printf.printf "tree packing      : %s\n" (Rat.to_string achieved);
       Printf.printf "bound met         : %b\n" met;
       Ok ())
  in
  let doc = "Broadcast throughput: LP bound vs achievable tree packing (§4.3)." in
  Cmd.v (Cmd.info "broadcast" ~doc)
    Term.(const run $ platform_arg $ master_arg $ cache_dir_arg)

(* --- experiments --- *)

let experiments_cmd =
  let only =
    let doc = "Run only the experiment with this id (e.g. E5)." in
    Arg.(value & opt (some string) None & info [ "only" ] ~docv:"ID" ~doc)
  in
  let run only =
    let tables = Experiments.all () in
    let tables =
      match only with
      | None -> tables
      | Some id ->
        List.filter
          (fun t -> String.lowercase_ascii t.Exp_common.id = String.lowercase_ascii id)
          tables
    in
    if tables = [] then begin
      prerr_endline "no such experiment";
      1
    end
    else begin
      List.iter
        (fun t ->
          print_string (Exp_common.render t);
          print_newline ())
        tables;
      0
    end
  in
  let doc = "Reproduce the paper's figures and claims (tables E1-E17)." in
  Cmd.v (Cmd.info "experiments" ~doc) Term.(const run $ only)

(* --- dot --- *)

let dot_cmd =
  let run path =
    or_die
      (let* p = read_platform path in
       print_string (Dot.of_platform p);
       Ok ())
  in
  let doc = "Export the platform as a Graphviz digraph." in
  Cmd.v (Cmd.info "dot" ~doc) Term.(const run $ platform_arg)

(* --- infer --- *)

let infer_cmd =
  let hosts_arg =
    let doc = "Comma-separated host names to probe." in
    Arg.(required & opt (some string) None & info [ "hosts" ] ~docv:"A,B,..." ~doc)
  in
  let run path master hosts =
    or_die
      (let* p = read_platform path in
       let* m = node_of_name p master in
       let* hs = parse_targets p hosts in
       let rep = Topology_probe.infer p ~master:m ~hosts:hs in
       List.iter
         (fun (h, t) ->
           Printf.printf "probe %s alone: %s time units (bw %s)\n"
             (Platform.name p h) (Rat.to_string t)
             (Rat.to_string (Rat.inv t)))
         rep.Topology_probe.alone;
       List.iter
         (fun ((a, b), t) ->
           Printf.printf "probe %s + %s: makespan %s\n" (Platform.name p a)
             (Platform.name p b) (Rat.to_string t))
         rep.Topology_probe.joint;
       print_string "inferred clusters:";
       List.iter
         (fun c ->
           Printf.printf "  {%s}"
             (String.concat ", " (List.map (Platform.name p) c)))
         rep.Topology_probe.clusters;
       print_newline ();
       Ok ())
  in
  let doc = "Infer shared bottlenecks from simultaneous probes (§5.3)." in
  Cmd.v (Cmd.info "infer" ~doc) Term.(const run $ platform_arg $ master_arg $ hosts_arg)

(* --- dynamic --- *)

module Dy = Dynamic_sched

let parse_rat what s =
  try Ok (Rat.of_string s)
  with _ -> Error (Printf.sprintf "bad rational %S for %s" s what)

(* "WHERE@T=MULT" -> (where, t, mult) *)
let parse_trace_point spec =
  match String.index_opt spec '@' with
  | None -> Error (Printf.sprintf "bad trace %S (want WHERE@T=MULT)" spec)
  | Some i -> (
    let where = String.sub spec 0 i in
    let rest = String.sub spec (i + 1) (String.length spec - i - 1) in
    match String.index_opt rest '=' with
    | None -> Error (Printf.sprintf "bad trace %S (want WHERE@T=MULT)" spec)
    | Some j ->
      let* t = parse_rat spec (String.sub rest 0 j) in
      let* m =
        parse_rat spec (String.sub rest (j + 1) (String.length rest - j - 1))
      in
      Ok (where, t, m))

let group_traces points =
  List.fold_left
    (fun acc (k, pt) ->
      let prev = try List.assoc k acc with Not_found -> [] in
      (k, prev @ [ pt ]) :: List.remove_assoc k acc)
    [] points

let dynamic_cmd =
  let strategy_arg =
    let doc = "Strategy: static, reactive, oracle or robust." in
    Arg.(value & opt string "robust" & info [ "strategy"; "s" ] ~docv:"S" ~doc)
  in
  let phase_arg =
    let doc = "Phase length (rational)." in
    Arg.(value & opt string "10" & info [ "phase" ] ~docv:"LEN" ~doc)
  in
  let phases_arg =
    let doc = "Number of phases." in
    Arg.(value & opt int 8 & info [ "phases" ] ~docv:"K" ~doc)
  in
  let cpu_trace_arg =
    let doc =
      "CPU multiplier breakpoint, NODE@T=MULT (repeatable; 0 = outage)."
    in
    Arg.(value & opt_all string [] & info [ "cpu-trace" ] ~docv:"SPEC" ~doc)
  in
  let bw_trace_arg =
    let doc =
      "Link multiplier breakpoint, SRC>DST@T=MULT (repeatable; 0 = cut)."
    in
    Arg.(value & opt_all string [] & info [ "bw-trace" ] ~docv:"SPEC" ~doc)
  in
  let ckpt_dir_arg =
    let doc =
      "Checkpoint the run (robust only) into $(docv): the per-epoch \
       decision log, executor snapshot and warm LP basis are committed \
       through the crash-safe store, alongside the run's disk-tier LP \
       cache."
    in
    Arg.(
      value & opt (some string) None & info [ "checkpoint-dir" ] ~docv:"DIR" ~doc)
  in
  let every_arg =
    let doc = "Checkpoint write cadence, in epochs." in
    Arg.(value & opt int 1 & info [ "checkpoint-every" ] ~docv:"K" ~doc)
  in
  let resume_arg =
    let doc =
      "Resume a crashed checkpointed run from --checkpoint-dir instead of \
       starting it; bit-identical to the uninterrupted run, and a \
       missing or corrupt record degrades to a cold start."
    in
    Arg.(value & flag & info [ "resume" ] ~doc)
  in
  let halt_at_arg =
    let doc =
      "Crash injection: die (like kill -9) at this epoch boundary, after \
       any checkpoint due there is committed.  Requires --checkpoint-dir."
    in
    Arg.(value & opt (some int) None & info [ "halt-at" ] ~docv:"K" ~doc)
  in
  let print_outcome (o : Dy.outcome) =
    Printf.printf "completed %s tasks\n" (Rat.to_string o.Dy.completed);
    List.iteri
      (fun i c -> Printf.printf "  phase %d: %s\n" i (Rat.to_string c))
      o.Dy.per_phase;
    let l = o.Dy.losses in
    if l <> Dy.no_losses then
      Printf.printf
        "losses: %d timed out, %d cancelled, %d retries, %d lost, %d \
         degraded phases, %d dead nodes, %d dead edges\n"
        l.Dy.timed_out_transfers l.Dy.cancelled_transfers l.Dy.retries
        l.Dy.lost_tasks l.Dy.degraded_phases l.Dy.dead_nodes l.Dy.dead_edges
  in
  let run path master strategy phase phases cpu_specs bw_specs ckpt_dir every
      resume halt_at =
    or_die
      (let* p = read_platform path in
       let* m = node_of_name p master in
       let* strategy =
         match String.lowercase_ascii strategy with
         | "static" -> Ok Dy.Static
         | "reactive" -> Ok Dy.Reactive
         | "oracle" -> Ok Dy.Oracle
         | "robust" -> Ok Dy.Robust
         | s -> Error (Printf.sprintf "unknown strategy %S" s)
       in
       let* phase = parse_rat "--phase" phase in
       let* cpu_points =
         List.fold_left
           (fun acc spec ->
             let* acc = acc in
             let* w, t, mult = parse_trace_point spec in
             let* n = node_of_name p w in
             Ok ((n, (t, mult)) :: acc))
           (Ok []) cpu_specs
       in
       let* bw_points =
         List.fold_left
           (fun acc spec ->
             let* acc = acc in
             let* w, t, mult = parse_trace_point spec in
             match String.index_opt w '>' with
             | None -> Error (Printf.sprintf "bad link %S (want SRC>DST)" w)
             | Some i -> (
               let* src = node_of_name p (String.sub w 0 i) in
               let* dst =
                 node_of_name p (String.sub w (i + 1) (String.length w - i - 1))
               in
               match Platform.find_edge p src dst with
               | Some e -> Ok ((e, (t, mult)) :: acc)
               | None -> Error (Printf.sprintf "no link %S in the platform" w)))
           (Ok []) bw_specs
       in
       let sc =
         {
           Dy.platform = p;
           master = m;
           cpu_traces = group_traces (List.rev cpu_points);
           bw_traces = group_traces (List.rev bw_points);
           phase;
           phases;
         }
       in
       match (ckpt_dir, resume, halt_at) with
       | None, true, _ -> Error "--resume requires --checkpoint-dir"
       | None, _, Some _ -> Error "--halt-at requires --checkpoint-dir"
       | None, false, None ->
         print_outcome (Dy.run sc strategy);
         Ok ()
       | Some _, _, _ when strategy <> Dy.Robust ->
         Error "--checkpoint-dir requires the robust strategy"
       | Some dir, true, _ ->
         let checkpoint = { Dy.Checkpoint.dir; every } in
         let o, from = Dy.resume ~checkpoint sc in
         (match from with
         | Some k -> Printf.printf "resumed from epoch %d\n" k
         | None -> print_endline "no usable checkpoint: cold start");
         print_outcome o;
         Ok ()
       | Some dir, false, halt_at -> (
         let checkpoint = { Dy.Checkpoint.dir; every } in
         match Dy.run ~checkpoint ?halt_at sc strategy with
         | o ->
           print_outcome o;
           Ok ()
         | exception Dy.Checkpoint.Halted k ->
           Printf.printf
             "halted at epoch %d (checkpoint committed); rerun with \
              --resume to continue\n"
             k;
           Ok ()))
  in
  let doc =
    "Run the phase-based dynamic strategies (§5.5) under multiplier \
     traces, with optional crash-recoverable checkpointing."
  in
  Cmd.v (Cmd.info "dynamic" ~doc)
    Term.(
      const run $ platform_arg $ master_arg $ strategy_arg $ phase_arg
      $ phases_arg $ cpu_trace_arg $ bw_trace_arg $ ckpt_dir_arg $ every_arg
      $ resume_arg $ halt_at_arg)

(* --- chaos --- *)

let chaos_cmd =
  let seed_arg =
    let doc = "Campaign seed (campaigns are deterministic in it)." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc)
  in
  let smoke_arg =
    let doc = "Single-density single-seed subset (fast; what CI runs)." in
    Arg.(value & flag & info [ "smoke" ] ~doc)
  in
  let shapes_arg =
    let doc =
      "Comma-separated platform shapes to sweep (default: the full axis \
       of stars, random trees and random connected graphs)."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "chaos-shapes" ] ~docv:"S1,S2" ~doc)
  in
  let run seed smoke shapes =
    let shapes =
      Option.map
        (fun s -> List.map String.trim (String.split_on_char ',' s))
        shapes
    in
    let s = Chaos.run_campaign ~smoke ?shapes ~seed () in
    Format.printf "%a@." Chaos.pp_summary s;
    if s.Chaos.violations = [] then 0 else 1
  in
  let doc =
    "Fuzz the failure-aware scheduler: seeded fault plans across shapes \
     and densities, an invariant battery on every run (including \
     kill-and-resume crash recovery); non-zero exit on any violation."
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(const run $ seed_arg $ smoke_arg $ shapes_arg)

(* --- format help --- *)

let format_cmd =
  let run () =
    print_string
      "Platform file format (one declaration per line, # comments):\n\n\
      \  node P1 w=2        computing node: 2 time units per task\n\
      \  node R w=inf       pure router (cannot compute)\n\
      \  edge P1 R c=3/2    oriented link: 3/2 time units per data unit\n\
      \  link P1 R c=0.5    both directions at once\n\n\
       Weights and costs accept integers, fractions (a/b), decimals and\n\
       (for weights) inf.\n";
    0
  in
  let doc = "Describe the platform file format." in
  Cmd.v (Cmd.info "format" ~doc) Term.(const run $ const ())

let main =
  let doc = "steady-state scheduling on heterogeneous clusters" in
  let info = Cmd.info "steady-cli" ~version:"1.0.0" ~doc in
  Cmd.group info
    [
      solve_ms_cmd;
      solve_scatter_cmd;
      solve_multicast_cmd;
      broadcast_cmd;
      experiments_cmd;
      dynamic_cmd;
      chaos_cmd;
      dot_cmd;
      infer_cmd;
      format_cmd;
    ]

let () = exit (Cmd.eval' main)
